#include "serve/protocol.hpp"

#include <cmath>
#include <set>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace pals {
namespace serve {

namespace {

/// Platform/power override keys a query may carry (the numeric subset of
/// analysis/experiments.cpp apply_config_file, minus the controller
/// knobs, which are cell-identity and belong in the grid).
const std::set<std::string>& platform_keys() {
  static const std::set<std::string> keys = {
      "latency",         "bandwidth",      "eager_threshold",
      "buses",           "links_per_node", "collective_scale",
      "static_fraction", "activity_ratio", "idle_scale"};
  return keys;
}

[[noreturn]] void bad(const std::string& message, const std::string& id = "") {
  throw ProtocolError(ErrorCode::kBadRequest, message, id);
}

double finite_number(const JsonValue& value, const std::string& key,
                     const std::string& id) {
  if (!value.is_number())
    bad("member '" + key + "' must be a number", id);
  if (!std::isfinite(value.number))
    bad("member '" + key + "' is not finite", id);
  return value.number;
}

std::string string_member(const JsonValue& value, const std::string& key,
                          const std::string& id) {
  if (!value.is_string())
    bad("member '" + key + "' must be a string", id);
  return value.string;
}

}  // namespace

std::string to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kQuery: return "query";
    case RequestKind::kPing: return "ping";
    case RequestKind::kStats: return "stats";
    case RequestKind::kShutdown: return "shutdown";
  }
  return "unknown";
}

std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

namespace {

bool error_code_from_string(const std::string& name, ErrorCode& out) {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kNotFound, ErrorCode::kOverloaded,
        ErrorCode::kDeadlineExceeded, ErrorCode::kShuttingDown,
        ErrorCode::kInternal}) {
    if (to_string(code) == name) {
      out = code;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string Request::baseline_key(const std::string& workload_key) const {
  std::string key = "pals-serve-baseline|" + workload_key;
  for (const auto& [name, value] : platform)
    key += "|" + name + "=" + format_roundtrip(value);
  if (!faults.empty()) key += "|faults=" + faults;
  return key;
}

Request parse_request(const std::string& line) {
  if (line.size() > kMaxRequestBytes)
    bad("request line of " + std::to_string(line.size()) +
        " bytes exceeds the " + std::to_string(kMaxRequestBytes) +
        "-byte bound");
  JsonValue document;
  try {
    document = json_parse(line);
  } catch (const Error& e) {
    bad(std::string("malformed JSON: ") + e.what());
  }
  if (!document.is_object()) bad("request must be a JSON object");

  // Recover the id first so even a rejected request echoes it back.
  std::string id;
  if (const JsonValue* member = document.find("id");
      member != nullptr && member->is_string())
    id = member->string;

  Request request;
  request.id = id;
  bool have_schema = false;
  std::set<std::string> seen;
  for (const auto& [key, value] : document.object) {
    if (!seen.insert(key).second)
      bad("duplicate member '" + key + "'", id);
    if (key == "schema") {
      have_schema = true;
      const std::string schema = string_member(value, key, id);
      if (schema != kSchema)
        bad("unsupported schema '" + schema + "' (this daemon speaks '" +
                kSchema + "')",
            id);
    } else if (key == "kind") {
      const std::string kind = string_member(value, key, id);
      if (kind == "query") request.kind = RequestKind::kQuery;
      else if (kind == "ping") request.kind = RequestKind::kPing;
      else if (kind == "stats") request.kind = RequestKind::kStats;
      else if (kind == "shutdown") request.kind = RequestKind::kShutdown;
      else bad("unknown kind '" + kind + "'", id);
    } else if (key == "id") {
      request.id = string_member(value, key, id);
    } else if (key == "workload") {
      request.workload = string_member(value, key, id);
    } else if (key == "gear_set") {
      request.gear_set = string_member(value, key, id);
    } else if (key == "algorithm") {
      request.algorithm = string_member(value, key, id);
    } else if (key == "controller") {
      request.controller = string_member(value, key, id);
    } else if (key == "beta") {
      request.beta = finite_number(value, key, id);
      if (request.beta < 0.0 || request.beta > 1.0)
        bad("beta must be within [0, 1]", id);
    } else if (key == "iterations") {
      const double iterations = finite_number(value, key, id);
      if (iterations < 0.0 || iterations > 1e6 ||
          iterations != std::floor(iterations))
        bad("iterations must be an integer within [0, 1e6]", id);
      request.iterations = static_cast<int>(iterations);
    } else if (key == "deadline_ms") {
      request.deadline_ms = finite_number(value, key, id);
      if (request.deadline_ms < 0.0)
        bad("deadline_ms must be >= 0", id);
    } else if (key == "faults") {
      request.faults = string_member(value, key, id);
    } else if (key == "platform") {
      if (!value.is_object())
        bad("member 'platform' must be an object", id);
      for (const auto& [pkey, pvalue] : value.object) {
        if (!platform_keys().contains(pkey))
          bad("unknown platform override '" + pkey + "'", id);
        request.platform.emplace_back(
            pkey, finite_number(pvalue, "platform." + pkey, id));
      }
    } else {
      bad("unknown member '" + key + "'", id);
    }
  }
  if (!have_schema) bad("missing required member 'schema'", id);
  if (request.kind == RequestKind::kQuery && request.workload.empty())
    bad("a query needs a non-empty 'workload'", id);
  return request;
}

namespace {

std::string response_head(const std::string& id, const char* status) {
  std::string out = "{\"schema\":\"";
  out += kSchema;
  out += "\",\"id\":\"" + json_escape(id) + "\",\"status\":\"";
  out += status;
  out += "\"";
  return out;
}

}  // namespace

std::string csv_data_line(const ExperimentRow& row) {
  // Render through the real CSV writer so the bytes can never drift from
  // what batch sweeps emit; drop its header line and trailing newline.
  std::string csv = rows_to_csv({row});
  const std::size_t header_end = csv.find('\n');
  csv.erase(0, header_end + 1);
  while (!csv.empty() && (csv.back() == '\n' || csv.back() == '\r'))
    csv.pop_back();
  return csv;
}

std::string render_query_ok(const std::string& id, const ExperimentRow& row,
                            double elapsed_ms) {
  std::string out = response_head(id, "ok");
  out += ",\"instance\":\"" + json_escape(row.instance) + "\"";
  out += ",\"variant\":\"" + json_escape(row.variant) + "\"";
  const auto put = [&out](const char* key, double value) {
    out += ",\"";
    out += key;
    out += "\":" + format_roundtrip(value);
  };
  put("load_balance", row.load_balance);
  put("parallel_efficiency", row.parallel_efficiency);
  put("normalized_energy", row.normalized_energy);
  put("normalized_time", row.normalized_time);
  put("normalized_edp", row.normalized_edp);
  put("overclocked_fraction", row.overclocked_fraction);
  out += ",\"csv\":\"" + json_escape(csv_data_line(row)) + "\"";
  out += ",\"elapsed_ms\":" + format_fixed(elapsed_ms, 3);
  out += "}";
  return out;
}

std::string render_pong(const std::string& id) {
  return response_head(id, "ok") + ",\"pong\":true}";
}

std::string render_stats(
    const std::string& id,
    const std::vector<std::pair<std::string, std::uint64_t>>& stats) {
  std::string out = response_head(id, "ok") + ",\"stats\":{";
  bool first = true;
  for (const auto& [key, value] : stats) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(key);
    out += "\":";
    out += std::to_string(value);
  }
  out += "}}";
  return out;
}

std::string render_shutdown_ack(const std::string& id) {
  return response_head(id, "ok") + ",\"draining\":true}";
}

std::string render_error(const std::string& id, ErrorCode code,
                         const std::string& message) {
  return response_head(id, "error") + ",\"code\":\"" + to_string(code) +
         "\",\"message\":\"" + json_escape(message) + "\"}";
}

ParsedResponse parse_response(const std::string& line) {
  JsonValue document;
  try {
    document = json_parse(line);
  } catch (const Error& e) {
    bad(std::string("malformed response JSON: ") + e.what());
  }
  if (!document.is_object()) bad("response must be a JSON object");
  const JsonValue* schema = document.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->string != kSchema)
    bad("response carries no '" + std::string(kSchema) + "' schema member");
  ParsedResponse response;
  response.raw = line;
  if (const JsonValue* id = document.find("id");
      id != nullptr && id->is_string())
    response.id = id->string;
  const JsonValue* status = document.find("status");
  if (status == nullptr || !status->is_string())
    bad("response carries no 'status' member", response.id);
  if (status->string == "ok") {
    response.ok = true;
    if (const JsonValue* csv = document.find("csv"); csv != nullptr) {
      if (!csv->is_string()) bad("'csv' must be a string", response.id);
      response.csv = csv->string;
    }
    if (const JsonValue* stats = document.find("stats"); stats != nullptr) {
      if (!stats->is_object()) bad("'stats' must be an object", response.id);
      response.has_stats = true;
    }
    if (const JsonValue* pong = document.find("pong"); pong != nullptr) {
      if (!pong->is_bool()) bad("'pong' must be a boolean", response.id);
      response.has_pong = true;
    }
  } else if (status->string == "error") {
    response.ok = false;
    const JsonValue* code = document.find("code");
    if (code == nullptr || !code->is_string())
      bad("error response carries no 'code' member", response.id);
    if (!error_code_from_string(code->string, response.code))
      bad("unknown error code '" + code->string + "'", response.id);
    const JsonValue* message = document.find("message");
    if (message == nullptr || !message->is_string())
      bad("error response carries no 'message' member", response.id);
    response.message = message->string;
  } else {
    bad("status must be 'ok' or 'error', not '" + status->string + "'",
        response.id);
  }
  return response;
}

void validate_request_line(const std::string& line) {
  (void)parse_request(line);
}

}  // namespace serve
}  // namespace pals
