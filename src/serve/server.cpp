#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/record.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace pals {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void bump(const char* name, std::atomic<std::uint64_t>& local) {
  local.fetch_add(1, std::memory_order_relaxed);
  obs::default_registry().counter(name).add();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes),
      engine_(options_.query, cache_) {}

void Server::run() {
  ignore_sigpipe();
  UnixListener listener = UnixListener::bind_or_replace(options_.socket_path);
  ThreadPool pool(options_.jobs);
  if (options_.log != nullptr)
    *options_.log << "pals_serve: serving on " << options_.socket_path
                  << " (workers " << pool.size() << ", queue limit "
                  << options_.queue_limit << ", cache budget "
                  << cache_.budget_bytes() << " bytes)\n"
                  << std::flush;
  if (options_.on_ready) options_.on_ready();

  const auto stop_requested = [this] {
    if (drain_.load(std::memory_order_relaxed)) return true;
    return options_.stop != nullptr &&
           options_.stop->load(std::memory_order_relaxed);
  };

  while (!stop_requested()) {
    UnixStream stream = listener.accept(options_.poll_seconds);
    if (!stream.valid()) continue;  // poll slice elapsed
    bump("serve.accepted", accepted_);
    if (active_.load(std::memory_order_relaxed) >= options_.queue_limit) {
      // Shed at admission: a bounded queue with an explicit, retryable
      // rejection beats an unbounded one with unbounded latency.
      bump("serve.shed", shed_);
      stream.write_all(
          render_error("", ErrorCode::kOverloaded,
                       "admission control: " +
                           std::to_string(options_.queue_limit) +
                           " connections already in flight; retry with "
                           "backoff") +
          "\n");
      continue;  // destructor closes
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    auto shared = std::make_shared<UnixStream>(std::move(stream));
    pool.submit([this, shared] {
      handle_connection(shared);
      active_.fetch_sub(1, std::memory_order_relaxed);
    });
  }

  // Drain: stop accepting (close + unlink, so new connects fail fast),
  // let in-flight connections finish, then join the workers.
  listener.close();
  while (active_.load(std::memory_order_relaxed) > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  if (options_.log != nullptr) {
    *options_.log << "pals_serve: drained";
    for (const auto& [key, value] : stats_rows())
      *options_.log << " " << key << "=" << value;
    *options_.log << "\n" << std::flush;
  }
}

void Server::handle_connection(const std::shared_ptr<UnixStream>& stream) {
  std::string line;
  double idle = 0.0;
  while (true) {
    const ReadLineStatus status =
        stream->read_line(line, kMaxRequestBytes, options_.poll_seconds);
    if (status == ReadLineStatus::kTimeout) {
      if (draining()) {
        stream->write_all(render_error("", ErrorCode::kShuttingDown,
                                       "daemon is draining") +
                          "\n");
        return;
      }
      idle += options_.poll_seconds;
      if (options_.idle_timeout_seconds > 0.0 &&
          idle >= options_.idle_timeout_seconds)
        return;  // silently drop the idle connection
      continue;
    }
    idle = 0.0;
    if (status == ReadLineStatus::kEof) {
      // Orderly close; a non-empty remainder means the client vanished
      // mid-line, which is its problem, not ours.
      if (!line.empty()) bump("serve.client_disconnects", client_disconnects_);
      return;
    }
    if (status == ReadLineStatus::kOversize) {
      bump("serve.bad_requests", bad_requests_);
      stream->write_all(
          render_error("", ErrorCode::kBadRequest,
                       "request line exceeds " +
                           std::to_string(kMaxRequestBytes) +
                           " bytes; closing (cannot resynchronize)") +
          "\n");
      return;  // the stream offset is lost; the line cannot be skipped
    }
    const std::string response = process_line(line);
    if (!stream->write_all(response + "\n")) {
      // Client disconnected mid-reply — survivable by design (SIGPIPE is
      // ignored and send reports EPIPE instead).
      bump("serve.client_disconnects", client_disconnects_);
      return;
    }
    if (draining()) return;
  }
}

std::string Server::process_line(const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const ProtocolError& e) {
    bump("serve.bad_requests", bad_requests_);
    return render_error(e.id, e.code, e.what());
  }
  switch (request.kind) {
    case RequestKind::kPing:
      return render_pong(request.id);
    case RequestKind::kStats:
      return render_stats(request.id, stats_rows());
    case RequestKind::kShutdown:
      request_drain();
      return render_shutdown_ack(request.id);
    case RequestKind::kQuery:
      break;
  }
  if (draining()) {
    return render_error(request.id, ErrorCode::kShuttingDown,
                        "daemon is draining; no new queries accepted");
  }
  bump("serve.queries", queries_);
  const Clock::time_point start = Clock::now();
  if (options_.debug_stall_seconds > 0.0) {
    // Test hook: consume the budget before the replay so overload and
    // deadline expiry are reproducible without a slow workload.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.debug_stall_seconds));
  }
  double deadline = request.deadline_ms > 0.0 ? request.deadline_ms / 1000.0
                                              : options_.default_deadline_seconds;
  if (options_.max_deadline_seconds > 0.0)
    deadline = deadline > 0.0
                   ? std::min(deadline, options_.max_deadline_seconds)
                   : options_.max_deadline_seconds;
  double remaining = deadline;
  if (deadline > 0.0) {
    remaining = deadline - seconds_since(start);
    if (remaining <= 0.0) {
      bump("serve.deadline_exceeded", deadline_exceeded_);
      bump("serve.query_errors", query_errors_);
      return render_error(request.id, ErrorCode::kDeadlineExceeded,
                          "deadline of " + format_fixed(deadline * 1000.0, 3) +
                              " ms expired before the replay started");
    }
  }
  try {
    const ExperimentRow row = engine_.execute(request, remaining);
    bump("serve.query_ok", query_ok_);
    return render_query_ok(request.id, row, seconds_since(start) * 1000.0);
  } catch (const ProtocolError& e) {
    if (e.code == ErrorCode::kDeadlineExceeded)
      bump("serve.deadline_exceeded", deadline_exceeded_);
    bump("serve.query_errors", query_errors_);
    return render_error(request.id, e.code, e.what());
  } catch (const std::exception& e) {
    bump("serve.query_errors", query_errors_);
    return render_error(request.id, ErrorCode::kInternal, e.what());
  }
}

std::vector<std::pair<std::string, std::uint64_t>> Server::stats_rows() const {
  const WarmCacheStats cache = cache_.stats();
  std::vector<std::pair<std::string, std::uint64_t>> rows = {
      {"accepted", accepted_.load(std::memory_order_relaxed)},
      {"bad_requests", bad_requests_.load(std::memory_order_relaxed)},
      {"cache_bytes", cache.resident_bytes},
      {"cache_entries", cache.entries},
      {"cache_evictions", cache.evictions},
      {"cache_failed_builds", cache.failed_builds},
      {"cache_hits", cache.hits},
      {"cache_misses", cache.misses},
      {"client_disconnects",
       client_disconnects_.load(std::memory_order_relaxed)},
      {"deadline_exceeded", deadline_exceeded_.load(std::memory_order_relaxed)},
      {"peak_rss_bytes", obs::peak_rss_bytes()},
      {"queries", queries_.load(std::memory_order_relaxed)},
      {"query_errors", query_errors_.load(std::memory_order_relaxed)},
      {"query_ok", query_ok_.load(std::memory_order_relaxed)},
      {"shed", shed_.load(std::memory_order_relaxed)},
  };
  return rows;
}

}  // namespace serve
}  // namespace pals
