// pals::serve wire protocol: line-delimited JSON requests/responses.
//
// One request per line, one response line per request, over a
// Unix-domain socket (docs/serve.md). The parser is the daemon's first
// line of defense and is hardened against the committed torture corpus
// in tests/serve/corrupt/: every malformed line — truncated JSON, an
// oversized line, a wrong schema version, a non-finite parameter — maps
// to a structured ProtocolError (rendered as a `bad-request` response)
// instead of an exception escaping a worker.
//
// Determinism contract: a `query` request names exactly one sweep cell
// (workload x gear set x algorithm x beta x controller, plus optional
// platform overrides and a fault plan), and the `csv` member of an `ok`
// response is byte-identical to the row batch `pals_sweep --jobs=1`
// writes for the same cell (tests/serve/serve_torture_test.cpp pins it).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiments.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pals {
namespace serve {

/// Schema tag every request and response must carry; bumped on any
/// incompatible wire change.
inline constexpr const char* kSchema = "pals-serve-v1";

/// Hard bound on one request line (admission control for bytes, not just
/// requests): a peer that streams an unterminated line is cut off here.
inline constexpr std::size_t kMaxRequestBytes = 64 * 1024;

enum class RequestKind {
  kQuery,     ///< run one what-if cell
  kPing,      ///< liveness probe
  kStats,     ///< serve.* counters + cache + peak RSS
  kShutdown,  ///< begin a cooperative drain (same as SIGTERM)
};

std::string to_string(RequestKind kind);

/// Structured error taxonomy of the wire protocol (docs/serve.md).
enum class ErrorCode {
  kBadRequest,        ///< malformed or invalid request line
  kNotFound,          ///< unknown workload / gear set / algorithm / controller
  kOverloaded,        ///< admission control shed the request (retryable)
  kDeadlineExceeded,  ///< the per-request wall-clock budget expired
  kShuttingDown,      ///< daemon is draining; no new work accepted
  kInternal,          ///< unexpected failure answering the query
};

std::string to_string(ErrorCode code);

/// Parse/validation failure carrying the wire error code (and the request
/// id when one was recovered before the failure).
class ProtocolError : public Error {
 public:
  ProtocolError(ErrorCode error_code, const std::string& message,
                std::string request_id = "")
      : Error(message), code(error_code), id(std::move(request_id)) {}

  ErrorCode code;
  std::string id;
};

/// One decoded request line.
struct Request {
  RequestKind kind = RequestKind::kQuery;
  std::string id;  ///< echoed verbatim in the response ("" when absent)

  // --- query fields (defaults mirror analysis/sweep.hpp Scenario) ---------
  std::string workload;             ///< required for kQuery
  std::string gear_set = "uniform-6";
  std::string algorithm = "max";
  std::string controller = "static";
  double beta = 0.5;
  int iterations = 0;               ///< 0 = server default
  /// Wall-clock budget, milliseconds; 0 = server default, capped by the
  /// server's maximum either way.
  double deadline_ms = 0.0;
  /// Optional inline fault-plan spec (fault/fault_plan.hpp grammar).
  std::string faults;
  /// Optional platform/power overrides, in document order. Keys are the
  /// numeric subset of analysis/experiments.cpp apply_config_file:
  /// latency, bandwidth, eager_threshold, buses, links_per_node,
  /// collective_scale, static_fraction, activity_ratio, idle_scale.
  std::vector<std::pair<std::string, double>> platform;

  /// Deterministic fingerprint of everything that changes the *baseline*
  /// replay (workload + platform overrides + fault plan) — the warm-cache
  /// key, so queries that share a baseline share one cached replay.
  std::string baseline_key(const std::string& workload_key) const;
};

/// Parse one request line. Throws ProtocolError (code kBadRequest) on
/// malformed JSON, an unsupported schema, unknown members, wrong types or
/// non-finite numbers. Name resolution (unknown workload, gear set, ...)
/// is the query layer's job — the parser only validates shape.
Request parse_request(const std::string& line);

// --- response rendering (single line, no trailing newline) ----------------

/// `ok` answer to a query: the structured row plus the byte-exact CSV data
/// line batch sweeps would write.
std::string render_query_ok(const std::string& id, const ExperimentRow& row,
                            double elapsed_ms);

/// `ok` answer to a ping.
std::string render_pong(const std::string& id);

/// `ok` answer to a stats request: "key":value counter members (sorted)
/// plus peak_rss_bytes.
std::string render_stats(const std::string& id,
                         const std::vector<std::pair<std::string,
                                                     std::uint64_t>>& stats);

/// `ok` acknowledgment of a shutdown request (sent before draining).
std::string render_shutdown_ack(const std::string& id);

/// Structured error response.
std::string render_error(const std::string& id, ErrorCode code,
                         const std::string& message);

/// The exact CSV data line (no header, no trailing newline) that
/// analysis/experiments.cpp rows_to_csv would emit for `row` — the
/// payload of the byte-identity contract.
std::string csv_data_line(const ExperimentRow& row);

/// Decoded view of a response line, for the client and the structural
/// validator. Throws ProtocolError (kBadRequest) when the line is not a
/// structurally valid pals-serve-v1 response.
struct ParsedResponse {
  std::string raw;  ///< the verbatim response line
  std::string id;
  bool ok = false;
  ErrorCode code = ErrorCode::kInternal;  ///< valid when !ok
  std::string message;                    ///< valid when !ok
  std::string csv;                        ///< valid for query ok
  bool has_stats = false;
  bool has_pong = false;
};

ParsedResponse parse_response(const std::string& line);

/// Structural validation of one request line without building a Request
/// (used by pals_json_check --serve); throws ProtocolError on violation.
void validate_request_line(const std::string& line);

}  // namespace serve
}  // namespace pals
