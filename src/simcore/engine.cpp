#include "simcore/engine.hpp"

#include <cstdio>
#include <utility>

#include "util/error.hpp"

namespace pals {

void SimEngine::schedule_at(Seconds when, Callback fn) {
  PALS_CHECK_MSG(when >= now_, "cannot schedule event in the past (when="
                                   << when << ", now=" << now_ << ")");
  queue_.push(Item{when, next_seq_++, std::move(fn)});
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
}

void SimEngine::schedule_after(Seconds delay, Callback fn) {
  PALS_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
  schedule_at(now_ + delay, std::move(fn));
}

void SimEngine::check_event_limit() const {
  if (event_limit_ != 0 && executed_ >= event_limit_)
    throw Error("simulated event limit exceeded (limit=" +
                std::to_string(event_limit_) +
                ", simulated time=" + std::to_string(now_) + "s)");
}

void SimEngine::arm_wall_limit() {
  if (wall_limit_seconds_ > 0.0)
    wall_start_ = std::chrono::steady_clock::now();
}

void SimEngine::check_wall_limit() const {
  if (wall_limit_seconds_ <= 0.0) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start_)
          .count();
  if (elapsed > wall_limit_seconds_) {
    // Only the configured limit appears in the message: elapsed time
    // varies run to run and would make quarantine records unstable.
    char limit[32];
    std::snprintf(limit, sizeof(limit), "%g", wall_limit_seconds_);
    throw Error(std::string("wall-clock watchdog expired (limit=") + limit +
                "s)");
  }
}

Seconds SimEngine::run() {
  arm_wall_limit();
  while (!queue_.empty()) {
    check_event_limit();
    check_wall_limit();
    // The queue stores const refs through top(); move out via const_cast is
    // avoided by copying the callback handle (cheap: std::function).
    Item item = queue_.top();
    queue_.pop();
    now_ = item.when;
    ++executed_;
    item.fn();
  }
  return now_;
}

Seconds SimEngine::run_until(Seconds deadline) {
  arm_wall_limit();
  while (!queue_.empty() && queue_.top().when <= deadline) {
    check_event_limit();
    check_wall_limit();
    Item item = queue_.top();
    queue_.pop();
    now_ = item.when;
    ++executed_;
    item.fn();
  }
  if (now_ < deadline && queue_.empty()) now_ = deadline;
  return now_;
}

}  // namespace pals
