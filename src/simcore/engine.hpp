// Discrete-event simulation engine.
//
// A minimal, deterministic DES core: callbacks scheduled at absolute
// simulated times, executed in (time, insertion-order) order. The replay
// simulator drives per-rank state machines with it.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "trace/types.hpp"

namespace pals {

class SimEngine {
public:
  using Callback = std::function<void()>;

  /// Current simulated time; only meaningful inside callbacks and after run().
  Seconds now() const { return now_; }

  /// Schedule `fn` at absolute time `when` (>= now()). Events with equal
  /// time run in scheduling order (stable).
  void schedule_at(Seconds when, Callback fn);

  /// Schedule `fn` `delay` seconds from now.
  void schedule_after(Seconds delay, Callback fn);

  /// Abort guard: run()/run_until() throw pals::Error ("simulated event
  /// limit exceeded ...") once more than `limit` events have executed
  /// (0 = unlimited, the default). Converts runaway simulations into
  /// structured failures the fault-tolerant sweep can classify as
  /// timeouts; the limit is on deterministic simulated work, so hitting
  /// it is reproducible across hosts and thread counts.
  void set_event_limit(std::size_t limit) { event_limit_ = limit; }
  std::size_t event_limit() const { return event_limit_; }

  /// Wall-clock watchdog: run()/run_until() throw pals::Error
  /// ("wall-clock watchdog expired ...") once more than `seconds` of host
  /// time has elapsed since the run started (0 = disabled, the default).
  /// Unlike the event limit this measures *host* time, so it is
  /// inherently nondeterministic — it exists to turn a wedged or
  /// pathologically slow simulation into a structured, classifiable
  /// failure (fault::ErrorClass::kTimeout) instead of a hung process.
  /// The error message carries only the configured limit, never the
  /// elapsed time, so quarantine records stay byte-stable.
  void set_wall_limit(double seconds) { wall_limit_seconds_ = seconds; }
  double wall_limit() const { return wall_limit_seconds_; }

  /// Run until the event queue is empty. Returns the final time.
  Seconds run();

  /// Run until the queue is empty or `deadline` is reached (events at
  /// exactly `deadline` are executed).
  Seconds run_until(Seconds deadline);

  std::size_t executed_events() const { return executed_; }
  /// Largest number of pending events observed (queue-depth high-water
  /// mark); deterministic — simulated scheduling has no host concurrency.
  std::size_t max_queue_depth() const { return max_queue_depth_; }
  bool empty() const { return queue_.empty(); }

private:
  struct Item {
    Seconds when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Throws when the event limit is active and exhausted.
  void check_event_limit() const;
  /// Throws when the wall-clock watchdog is armed and expired.
  void check_wall_limit() const;
  void arm_wall_limit();

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::size_t event_limit_ = 0;
  double wall_limit_seconds_ = 0.0;
  std::chrono::steady_clock::time_point wall_start_{};
};

}  // namespace pals
