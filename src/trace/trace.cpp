#include "trace/trace.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/error.hpp"

namespace pals {

Trace::Trace(Rank n_ranks) {
  PALS_CHECK_MSG(n_ranks > 0, "trace needs at least one rank");
  streams_.resize(static_cast<std::size_t>(n_ranks));
}

std::span<const Event> Trace::events(Rank rank) const {
  PALS_CHECK_MSG(rank >= 0 && rank < n_ranks(), "rank " << rank
                                                        << " out of range");
  return streams_[static_cast<std::size_t>(rank)];
}

std::vector<Event>& Trace::mutable_events(Rank rank) {
  PALS_CHECK_MSG(rank >= 0 && rank < n_ranks(), "rank " << rank
                                                        << " out of range");
  return streams_[static_cast<std::size_t>(rank)];
}

void Trace::append(Rank rank, Event event) {
  mutable_events(rank).push_back(std::move(event));
}

std::size_t Trace::total_events() const {
  std::size_t n = 0;
  for (const auto& s : streams_) n += s.size();
  return n;
}

Seconds Trace::computation_time(Rank rank) const {
  Seconds total = 0.0;
  for (const Event& e : events(rank))
    if (const auto* c = std::get_if<ComputeEvent>(&e)) total += c->duration;
  return total;
}

Seconds Trace::computation_time(Rank rank, std::int32_t phase) const {
  Seconds total = 0.0;
  for (const Event& e : events(rank))
    if (const auto* c = std::get_if<ComputeEvent>(&e))
      if (c->phase == phase) total += c->duration;
  return total;
}

std::vector<Seconds> Trace::computation_times() const {
  std::vector<Seconds> out;
  out.reserve(streams_.size());
  for (Rank r = 0; r < n_ranks(); ++r) out.push_back(computation_time(r));
  return out;
}

std::vector<std::int32_t> Trace::phases() const {
  std::set<std::int32_t> found;
  for (const auto& stream : streams_)
    for (const Event& e : stream)
      if (const auto* c = std::get_if<ComputeEvent>(&e))
        if (c->phase >= 0) found.insert(c->phase);
  return {found.begin(), found.end()};
}

std::size_t Trace::iteration_count() const {
  if (streams_.empty()) return 0;
  std::size_t count = 0;
  for (const Event& e : streams_.front())
    if (const auto* m = std::get_if<MarkerEvent>(&e))
      if (m->kind == MarkerKind::kIterationEnd) ++count;
  return count;
}

void Trace::validate() const {
  PALS_CHECK_MSG(!streams_.empty(), "empty trace");
  // Per-rank checks: peers, request discipline.
  for (Rank r = 0; r < n_ranks(); ++r) {
    std::unordered_set<RequestId> open_requests;
    std::size_t index = 0;
    for (const Event& e : events(r)) {
      const auto check_peer = [&](Rank peer) {
        PALS_CHECK_MSG(peer >= 0 && peer < n_ranks(),
                       "rank " << r << " event " << index << ": peer " << peer
                               << " out of range");
        PALS_CHECK_MSG(peer != r, "rank " << r << " event " << index
                                          << ": self-messaging not allowed");
      };
      if (const auto* s = std::get_if<SendEvent>(&e)) {
        check_peer(s->peer);
      } else if (const auto* v = std::get_if<RecvEvent>(&e)) {
        check_peer(v->peer);
      } else if (const auto* is = std::get_if<IsendEvent>(&e)) {
        check_peer(is->peer);
        PALS_CHECK_MSG(open_requests.insert(is->request).second,
                       "rank " << r << " event " << index << ": request "
                               << is->request << " already open");
      } else if (const auto* ir = std::get_if<IrecvEvent>(&e)) {
        check_peer(ir->peer);
        PALS_CHECK_MSG(open_requests.insert(ir->request).second,
                       "rank " << r << " event " << index << ": request "
                               << ir->request << " already open");
      } else if (const auto* w = std::get_if<WaitEvent>(&e)) {
        PALS_CHECK_MSG(open_requests.erase(w->request) == 1,
                       "rank " << r << " event " << index
                               << ": wait on unknown request " << w->request);
      } else if (std::holds_alternative<WaitAllEvent>(e)) {
        open_requests.clear();
      } else if (const auto* c = std::get_if<ComputeEvent>(&e)) {
        PALS_CHECK_MSG(c->duration >= 0.0,
                       "rank " << r << " event " << index
                               << ": negative compute duration");
      } else if (const auto* coll = std::get_if<CollectiveEvent>(&e)) {
        PALS_CHECK_MSG(coll->root >= 0 && coll->root < n_ranks(),
                       "rank " << r << " event " << index
                               << ": collective root out of range");
      }
      ++index;
    }
    PALS_CHECK_MSG(open_requests.empty(),
                   "rank " << r << ": " << open_requests.size()
                           << " request(s) never waited on");
  }
  // Cross-rank check: identical collective sequences.
  std::vector<CollectiveEvent> reference;
  for (const Event& e : events(0))
    if (const auto* c = std::get_if<CollectiveEvent>(&e))
      reference.push_back(*c);
  for (Rank r = 1; r < n_ranks(); ++r) {
    std::size_t k = 0;
    for (const Event& e : events(r)) {
      if (const auto* c = std::get_if<CollectiveEvent>(&e)) {
        PALS_CHECK_MSG(k < reference.size(),
                       "rank " << r << " issues more collectives than rank 0");
        PALS_CHECK_MSG(c->op == reference[k].op && c->root == reference[k].root,
                       "rank " << r << " collective " << k
                               << " mismatches rank 0 ("
                               << to_string(c->op) << " vs "
                               << to_string(reference[k].op) << ")");
        ++k;
      }
    }
    PALS_CHECK_MSG(k == reference.size(),
                   "rank " << r << " issues fewer collectives ("
                           << k << ") than rank 0 (" << reference.size()
                           << ")");
  }
}

TraceBuilder& TraceBuilder::compute(Seconds duration, std::int32_t phase) {
  trace_->append(rank_, ComputeEvent{duration, phase});
  return *this;
}

TraceBuilder& TraceBuilder::send(Rank peer, std::int32_t tag, Bytes bytes) {
  trace_->append(rank_, SendEvent{peer, tag, bytes});
  return *this;
}

TraceBuilder& TraceBuilder::recv(Rank peer, std::int32_t tag, Bytes bytes) {
  trace_->append(rank_, RecvEvent{peer, tag, bytes});
  return *this;
}

TraceBuilder& TraceBuilder::isend(Rank peer, std::int32_t tag, Bytes bytes,
                                  RequestId req) {
  trace_->append(rank_, IsendEvent{peer, tag, bytes, req});
  return *this;
}

TraceBuilder& TraceBuilder::irecv(Rank peer, std::int32_t tag, Bytes bytes,
                                  RequestId req) {
  trace_->append(rank_, IrecvEvent{peer, tag, bytes, req});
  return *this;
}

TraceBuilder& TraceBuilder::wait(RequestId req) {
  trace_->append(rank_, WaitEvent{req});
  return *this;
}

TraceBuilder& TraceBuilder::waitall() {
  trace_->append(rank_, WaitAllEvent{});
  return *this;
}

TraceBuilder& TraceBuilder::collective(CollectiveOp op, Bytes bytes,
                                       Rank root) {
  trace_->append(rank_, CollectiveEvent{op, bytes, root});
  return *this;
}

TraceBuilder& TraceBuilder::marker(MarkerKind kind, std::int32_t id) {
  trace_->append(rank_, MarkerEvent{kind, id});
  return *this;
}

}  // namespace pals
