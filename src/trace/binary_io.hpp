// Binary trace serialization (.palsb).
//
// Compact alternative to the text format for large traces: varint field
// encoding brings typical traces to ~20-30 % of their text size and
// parses an order of magnitude faster. The format is
//
//   "PALSB1"                          magic
//   varint n_ranks, string name
//   per rank: varint event_count, then events as
//     u8 tag, followed by tag-specific fields (varints for integers,
//     zig-zag for signed, f64 for durations)
//
// Both formats hold identical information; read_trace_binary validates
// the result exactly like the text reader (pass validate = false to load
// a broken trace for the static verifier, see trace/io.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace pals {

std::vector<std::uint8_t> write_trace_binary(const Trace& trace);
void write_trace_binary_file(const Trace& trace, const std::string& path);

Trace read_trace_binary(const std::uint8_t* data, std::size_t size,
                        bool validate = true);
Trace read_trace_binary(const std::vector<std::uint8_t>& buffer,
                        bool validate = true);
Trace read_trace_binary_file(const std::string& path, bool validate = true);

}  // namespace pals
