// Logical trace events: the per-rank program as seen by Dimemas.
//
// A logical trace abstracts a run of an MPI application into, per rank, a
// sequence of computation bursts (durations measured at the reference/top
// CPU frequency) and communication operations. Replay re-times this
// sequence on a platform model; the power layer rescales burst durations
// for a chosen DVFS frequency.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "trace/types.hpp"

namespace pals {

/// CPU burst. `duration` is the time at the reference frequency; `phase`
/// labels which computation phase the burst belongs to (-1 = unphased).
struct ComputeEvent {
  Seconds duration = 0.0;
  std::int32_t phase = -1;

  bool operator==(const ComputeEvent&) const = default;
};

/// Blocking send (rendezvous/eager semantics decided by the platform model).
struct SendEvent {
  Rank peer = 0;
  std::int32_t tag = 0;
  Bytes bytes = 0;

  bool operator==(const SendEvent&) const = default;
};

/// Blocking receive.
struct RecvEvent {
  Rank peer = 0;
  std::int32_t tag = 0;
  Bytes bytes = 0;

  bool operator==(const RecvEvent&) const = default;
};

/// Non-blocking send; completion is observed by a WaitEvent on `request`.
struct IsendEvent {
  Rank peer = 0;
  std::int32_t tag = 0;
  Bytes bytes = 0;
  RequestId request = 0;

  bool operator==(const IsendEvent&) const = default;
};

/// Non-blocking receive.
struct IrecvEvent {
  Rank peer = 0;
  std::int32_t tag = 0;
  Bytes bytes = 0;
  RequestId request = 0;

  bool operator==(const IrecvEvent&) const = default;
};

/// Wait for one previously posted non-blocking request.
struct WaitEvent {
  RequestId request = 0;

  bool operator==(const WaitEvent&) const = default;
};

/// Wait for all outstanding non-blocking requests of the rank.
struct WaitAllEvent {
  bool operator==(const WaitAllEvent&) const = default;
};

/// World-communicator collective. `bytes` is the per-rank payload
/// contribution; `root` is meaningful for rooted collectives only.
struct CollectiveEvent {
  CollectiveOp op = CollectiveOp::kBarrier;
  Bytes bytes = 0;
  Rank root = 0;

  bool operator==(const CollectiveEvent&) const = default;
};

/// Structural marker (iteration/phase boundary); zero simulated cost.
struct MarkerEvent {
  MarkerKind kind = MarkerKind::kIterationBegin;
  std::int32_t id = 0;

  bool operator==(const MarkerEvent&) const = default;
};

using Event = std::variant<ComputeEvent, SendEvent, RecvEvent, IsendEvent,
                           IrecvEvent, WaitEvent, WaitAllEvent,
                           CollectiveEvent, MarkerEvent>;

/// One-line textual rendering (also the trace file record format).
std::string to_string(const Event& event);

/// True for events that participate in communication matching.
bool is_communication(const Event& event);

}  // namespace pals
