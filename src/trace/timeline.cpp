#include "trace/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

// Tolerance for "lane continues where it left off" checks; replay arithmetic
// is pure addition so drift is tiny, but serialization rounds.
constexpr double kTimeEps = 1e-9;

}  // namespace

std::string to_string(RankState state) {
  switch (state) {
    case RankState::kCompute: return "compute";
    case RankState::kSend: return "send";
    case RankState::kRecv: return "recv";
    case RankState::kWait: return "wait";
    case RankState::kCollective: return "collective";
    case RankState::kIdle: return "idle";
  }
  throw Error("invalid RankState enum value");
}

RankState parse_rank_state(const std::string& name) {
  if (name == "compute") return RankState::kCompute;
  if (name == "send") return RankState::kSend;
  if (name == "recv") return RankState::kRecv;
  if (name == "wait") return RankState::kWait;
  if (name == "collective") return RankState::kCollective;
  if (name == "idle") return RankState::kIdle;
  throw Error("unknown rank state: " + name);
}

bool is_communication_state(RankState state) {
  return state != RankState::kCompute;
}

Timeline::Timeline(Rank n_ranks) {
  PALS_CHECK_MSG(n_ranks > 0, "timeline needs at least one rank");
  lanes_.resize(static_cast<std::size_t>(n_ranks));
}

std::span<const StateInterval> Timeline::intervals(Rank rank) const {
  PALS_CHECK_MSG(rank >= 0 && rank < n_ranks(),
                 "rank " << rank << " out of range");
  return lanes_[static_cast<std::size_t>(rank)];
}

void Timeline::append(Rank rank, StateInterval interval) {
  PALS_CHECK_MSG(rank >= 0 && rank < n_ranks(),
                 "rank " << rank << " out of range");
  PALS_CHECK_MSG(std::isfinite(interval.begin) && std::isfinite(interval.end),
                 "rank " << rank << ": non-finite interval ["
                         << interval.begin << ", " << interval.end << ")");
  PALS_CHECK_MSG(interval.end >= interval.begin,
                 "interval ends (" << interval.end << ") before it begins ("
                                   << interval.begin << ")");
  auto& lane = lanes_[static_cast<std::size_t>(rank)];
  if (!lane.empty()) {
    PALS_CHECK_MSG(std::abs(interval.begin - lane.back().end) <= kTimeEps,
                   "rank " << rank << ": interval starts at " << interval.begin
                           << " but lane ends at " << lane.back().end);
    interval.begin = lane.back().end;  // remove rounding drift
    if (interval.end < interval.begin) interval.end = interval.begin;
  }
  if (interval.duration() == 0.0) return;  // zero-width intervals carry nothing
  lane.push_back(interval);
}

Seconds Timeline::makespan() const {
  Seconds t = 0.0;
  for (const auto& lane : lanes_)
    if (!lane.empty()) t = std::max(t, lane.back().end);
  return t;
}

Seconds Timeline::state_time(Rank rank, RankState state) const {
  Seconds total = 0.0;
  for (const StateInterval& iv : intervals(rank))
    if (iv.state == state) total += iv.duration();
  return total;
}

Seconds Timeline::compute_time(Rank rank) const {
  return state_time(rank, RankState::kCompute);
}

Seconds Timeline::communication_time(Rank rank) const {
  Seconds total = 0.0;
  for (const StateInterval& iv : intervals(rank))
    if (iv.state != RankState::kCompute) total += iv.duration();
  return total;
}

Seconds Timeline::compute_time(Rank rank, std::int32_t phase) const {
  Seconds total = 0.0;
  for (const StateInterval& iv : intervals(rank))
    if (iv.state == RankState::kCompute && iv.phase == phase)
      total += iv.duration();
  return total;
}

std::vector<Seconds> Timeline::compute_times() const {
  std::vector<Seconds> out;
  out.reserve(lanes_.size());
  for (Rank r = 0; r < n_ranks(); ++r) out.push_back(compute_time(r));
  return out;
}

Seconds Timeline::iteration_compute_time(Rank rank,
                                         std::int32_t iteration) const {
  Seconds total = 0.0;
  for (const StateInterval& iv : intervals(rank))
    if (iv.state == RankState::kCompute && iv.iteration == iteration)
      total += iv.duration();
  return total;
}

std::int32_t Timeline::max_iteration() const {
  std::int32_t max_iter = -1;
  for (const auto& lane : lanes_)
    for (const StateInterval& iv : lane)
      max_iter = std::max(max_iter, iv.iteration);
  return max_iter;
}

void Timeline::merge_adjacent() {
  for (auto& lane : lanes_) {
    std::vector<StateInterval> merged;
    merged.reserve(lane.size());
    for (const StateInterval& iv : lane) {
      if (!merged.empty() && merged.back().state == iv.state &&
          merged.back().phase == iv.phase &&
          merged.back().iteration == iv.iteration) {
        merged.back().end = iv.end;
      } else {
        merged.push_back(iv);
      }
    }
    lane = std::move(merged);
  }
}

void Timeline::pad_to_makespan() {
  const Seconds end = makespan();
  for (Rank r = 0; r < n_ranks(); ++r) {
    auto& lane = lanes_[static_cast<std::size_t>(r)];
    const Seconds lane_end = lane.empty() ? 0.0 : lane.back().end;
    if (lane_end < end)
      append(r, StateInterval{lane_end, end, RankState::kIdle, -1});
  }
}

void Timeline::validate() const {
  for (Rank r = 0; r < n_ranks(); ++r) {
    Seconds cursor = 0.0;
    bool first = true;
    for (const StateInterval& iv : intervals(r)) {
      PALS_CHECK_MSG(std::isfinite(iv.begin) && std::isfinite(iv.end),
                     "rank " << r << ": non-finite interval bound");
      PALS_CHECK_MSG(iv.end >= iv.begin,
                     "rank " << r << ": negative-length interval");
      if (first) {
        PALS_CHECK_MSG(iv.begin >= -kTimeEps,
                       "rank " << r << ": timeline starts before 0");
        first = false;
      } else {
        PALS_CHECK_MSG(std::abs(iv.begin - cursor) <= kTimeEps,
                       "rank " << r << ": gap or overlap at t=" << iv.begin);
      }
      cursor = iv.end;
    }
  }
}

void write_timeline(const Timeline& timeline, std::ostream& out) {
  out << "# pals-timeline v1\n";
  out << "ranks " << timeline.n_ranks() << '\n';
  out.precision(17);
  for (Rank r = 0; r < timeline.n_ranks(); ++r) {
    for (const StateInterval& iv : timeline.intervals(r)) {
      out << r << ' ' << iv.begin << ' ' << iv.end << ' '
          << to_string(iv.state);
      // Optional trailing fields: phase, then iteration (phase is emitted
      // as -1 when only the iteration is labelled).
      if (iv.phase >= 0 || iv.iteration >= 0) out << ' ' << iv.phase;
      if (iv.iteration >= 0) out << ' ' << iv.iteration;
      out << '\n';
    }
  }
}

Timeline read_timeline(std::istream& in) {
  std::string line;
  Timeline timeline;
  bool magic_seen = false;
  bool ranks_seen = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (!magic_seen) {
      PALS_CHECK_MSG(trimmed == "# pals-timeline v1",
                     "timeline line " << line_no << ": bad magic");
      magic_seen = true;
      continue;
    }
    if (trimmed.front() == '#') continue;
    const auto tok = split_ws(trimmed);
    if (tok[0] == "ranks") {
      PALS_CHECK_MSG(tok.size() == 2, "timeline line " << line_no
                                                       << ": bad ranks line");
      timeline = Timeline(static_cast<Rank>(parse_int(tok[1])));
      ranks_seen = true;
      continue;
    }
    PALS_CHECK_MSG(ranks_seen, "timeline line " << line_no
                                                << ": record before ranks");
    PALS_CHECK_MSG(tok.size() >= 4 && tok.size() <= 6,
                   "timeline line " << line_no << ": expected 4-6 fields");
    StateInterval iv;
    const Rank rank = static_cast<Rank>(parse_int(tok[0]));
    iv.begin = parse_double(tok[1]);
    iv.end = parse_double(tok[2]);
    iv.state = parse_rank_state(tok[3]);
    if (tok.size() >= 5) iv.phase = static_cast<std::int32_t>(parse_int(tok[4]));
    if (tok.size() == 6)
      iv.iteration = static_cast<std::int32_t>(parse_int(tok[5]));
    timeline.append(rank, iv);
  }
  PALS_CHECK_MSG(magic_seen && ranks_seen, "timeline parse: truncated input");
  timeline.validate();
  return timeline;
}

}  // namespace pals
