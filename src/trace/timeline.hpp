// Per-rank state timelines — the Paraver-view of a (simulated) execution.
//
// The replay simulator emits, for every rank, a gap-free sequence of state
// intervals. The power model integrates energy over these intervals (CPU
// activity differs between computation and communication/wait states); the
// analysis layer derives load balance, parallel efficiency and Gantt
// visualizations from them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "trace/types.hpp"

namespace pals {

/// What a rank's CPU is doing during an interval.
enum class RankState {
  kCompute,      ///< executing a computation burst
  kSend,         ///< inside a (blocking) send: overhead + transfer/stall
  kRecv,         ///< blocked in a receive
  kWait,         ///< blocked in Wait/Waitall
  kCollective,   ///< inside a collective operation
  kIdle,         ///< finished its stream, waiting for the application end
};

std::string to_string(RankState state);
RankState parse_rank_state(const std::string& name);

/// True for the states whose time counts as "communication" in the paper's
/// activity-factor model (everything that is not computation).
bool is_communication_state(RankState state);

struct StateInterval {
  Seconds begin = 0.0;
  Seconds end = 0.0;
  RankState state = RankState::kIdle;
  std::int32_t phase = -1;      ///< phase label of the compute burst, else -1
  /// Iteration the interval belongs to (from iteration markers), -1 when
  /// the trace is unmarked or the interval precedes the first iteration.
  /// Lets the power layer charge per-iteration DVFS schedules exactly.
  std::int32_t iteration = -1;

  Seconds duration() const { return end - begin; }
  bool operator==(const StateInterval&) const = default;
};

/// Gap-free per-rank interval sequences over [0, makespan].
class Timeline {
public:
  Timeline() = default;
  explicit Timeline(Rank n_ranks);

  Rank n_ranks() const { return static_cast<Rank>(lanes_.size()); }

  std::span<const StateInterval> intervals(Rank rank) const;

  /// Append an interval to `rank`'s lane; must start where the lane ends.
  void append(Rank rank, StateInterval interval);

  /// End time of the longest lane (total simulated execution time).
  Seconds makespan() const;

  Seconds state_time(Rank rank, RankState state) const;
  Seconds compute_time(Rank rank) const;
  /// All non-compute, non-idle time (the paper's "waiting in MPI").
  Seconds communication_time(Rank rank) const;
  /// Compute time restricted to one phase label.
  Seconds compute_time(Rank rank, std::int32_t phase) const;

  std::vector<Seconds> compute_times() const;

  /// Compute time of `rank` within iteration `iteration`.
  Seconds iteration_compute_time(Rank rank, std::int32_t iteration) const;
  /// Largest iteration label present anywhere, or -1 if unmarked.
  std::int32_t max_iteration() const;

  /// Coalesce touching intervals with identical state+phase+iteration.
  void merge_adjacent();

  /// Pad every lane with kIdle so all lanes end at makespan().
  void pad_to_makespan();

  /// Throws pals::Error if any lane has gaps, overlaps or negative spans.
  void validate() const;

  bool operator==(const Timeline&) const = default;

private:
  std::vector<std::vector<StateInterval>> lanes_;
};

/// Text serialization (.palsv): "rank begin end state [phase]" per line.
void write_timeline(const Timeline& timeline, std::ostream& out);
Timeline read_timeline(std::istream& in);

}  // namespace pals
