#include "trace/event.hpp"

#include <sstream>

namespace pals {
namespace {

struct Stringifier {
  std::ostringstream os;

  Stringifier() { os.precision(17); }  // round-trippable doubles

  void operator()(const ComputeEvent& e) {
    os << "compute " << e.duration;
    if (e.phase >= 0) os << " phase=" << e.phase;
  }
  void operator()(const SendEvent& e) {
    os << "send " << e.peer << ' ' << e.tag << ' ' << e.bytes;
  }
  void operator()(const RecvEvent& e) {
    os << "recv " << e.peer << ' ' << e.tag << ' ' << e.bytes;
  }
  void operator()(const IsendEvent& e) {
    os << "isend " << e.peer << ' ' << e.tag << ' ' << e.bytes << ' '
       << e.request;
  }
  void operator()(const IrecvEvent& e) {
    os << "irecv " << e.peer << ' ' << e.tag << ' ' << e.bytes << ' '
       << e.request;
  }
  void operator()(const WaitEvent& e) { os << "wait " << e.request; }
  void operator()(const WaitAllEvent&) { os << "waitall"; }
  void operator()(const CollectiveEvent& e) {
    os << "coll " << to_string(e.op) << ' ' << e.bytes << ' ' << e.root;
  }
  void operator()(const MarkerEvent& e) {
    os << "marker " << to_string(e.kind) << ' ' << e.id;
  }
};

}  // namespace

std::string to_string(const Event& event) {
  Stringifier s;
  std::visit(s, event);
  return s.os.str();
}

bool is_communication(const Event& event) {
  return !std::holds_alternative<ComputeEvent>(event) &&
         !std::holds_alternative<MarkerEvent>(event);
}

}  // namespace pals
