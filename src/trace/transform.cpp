#include "trace/transform.hpp"

#include "util/error.hpp"

namespace pals {

Trace scale_compute(const Trace& trace, std::span<const double> factor) {
  PALS_CHECK_MSG(factor.size() == static_cast<std::size_t>(trace.n_ranks()),
                 "factor count " << factor.size() << " != rank count "
                                 << trace.n_ranks());
  for (double f : factor)
    PALS_CHECK_MSG(f > 0.0, "compute scale factor must be positive");

  Trace out = trace;
  for (Rank r = 0; r < out.n_ranks(); ++r) {
    const double f = factor[static_cast<std::size_t>(r)];
    for (Event& e : out.mutable_events(r))
      if (auto* c = std::get_if<ComputeEvent>(&e)) c->duration *= f;
  }
  return out;
}

Trace scale_compute_per_phase(
    const Trace& trace, const std::vector<std::vector<double>>& factor,
    std::span<const double> default_factor) {
  PALS_CHECK_MSG(factor.size() == static_cast<std::size_t>(trace.n_ranks()),
                 "per-phase factor rank count mismatch");
  PALS_CHECK_MSG(
      default_factor.size() == static_cast<std::size_t>(trace.n_ranks()),
      "default factor rank count mismatch");

  Trace out = trace;
  for (Rank r = 0; r < out.n_ranks(); ++r) {
    const auto& phase_factors = factor[static_cast<std::size_t>(r)];
    const double fallback = default_factor[static_cast<std::size_t>(r)];
    PALS_CHECK_MSG(fallback > 0.0, "default scale factor must be positive");
    for (Event& e : out.mutable_events(r)) {
      auto* c = std::get_if<ComputeEvent>(&e);
      if (!c) continue;
      double f = fallback;
      if (c->phase >= 0) {
        const auto p = static_cast<std::size_t>(c->phase);
        PALS_CHECK_MSG(p < phase_factors.size(),
                       "rank " << r << ": no factor for phase " << c->phase);
        f = phase_factors[p];
        PALS_CHECK_MSG(f > 0.0, "phase scale factor must be positive");
      }
      c->duration *= f;
    }
  }
  return out;
}

Trace scale_compute_uniform(const Trace& trace, double factor) {
  const std::vector<double> factors(static_cast<std::size_t>(trace.n_ranks()),
                                    factor);
  return scale_compute(trace, factors);
}

namespace {

Trace scale_per_iteration_impl(const Trace& trace,
                               const std::vector<std::vector<double>>& factor,
                               std::span<const double> default_factor) {
  PALS_CHECK_MSG(trace.iteration_count() > 0,
                 "per-iteration scaling requires iteration markers");
  Trace out = trace;
  for (Rank r = 0; r < out.n_ranks(); ++r) {
    std::int32_t iteration = -1;
    for (Event& e : out.mutable_events(r)) {
      if (const auto* m = std::get_if<MarkerEvent>(&e)) {
        if (m->kind == MarkerKind::kIterationBegin) iteration = m->id;
        if (m->kind == MarkerKind::kIterationEnd) iteration = -1;
        continue;
      }
      auto* c = std::get_if<ComputeEvent>(&e);
      if (!c) continue;
      if (iteration < 0) {
        if (default_factor.empty()) continue;  // classic: leave untouched
        const double f = default_factor[static_cast<std::size_t>(r)];
        PALS_CHECK_MSG(f > 0.0, "compute scale factor must be positive");
        c->duration *= f;
        continue;
      }
      const auto i = static_cast<std::size_t>(iteration);
      PALS_CHECK_MSG(i < factor.size(),
                     "no factors for iteration " << iteration);
      PALS_CHECK_MSG(
          static_cast<std::size_t>(r) < factor[i].size(),
          "iteration " << iteration << " has no factor for rank " << r);
      const double f = factor[i][static_cast<std::size_t>(r)];
      PALS_CHECK_MSG(f > 0.0, "compute scale factor must be positive");
      c->duration *= f;
    }
  }
  return out;
}

}  // namespace

Trace scale_compute_per_iteration(
    const Trace& trace, const std::vector<std::vector<double>>& factor) {
  return scale_per_iteration_impl(trace, factor, {});
}

Trace scale_compute_per_iteration(
    const Trace& trace, const std::vector<std::vector<double>>& factor,
    std::span<const double> default_factor) {
  PALS_CHECK_MSG(
      default_factor.size() == static_cast<std::size_t>(trace.n_ranks()),
      "default factor rank count mismatch");
  return scale_per_iteration_impl(trace, factor, default_factor);
}

Trace add_iteration_overhead(
    const Trace& trace, const std::vector<std::vector<Seconds>>& overhead) {
  PALS_CHECK_MSG(trace.iteration_count() > 0,
                 "iteration overhead requires iteration markers");
  Trace out(trace.n_ranks());
  out.set_name(trace.name());
  for (Rank r = 0; r < trace.n_ranks(); ++r) {
    for (const Event& e : trace.events(r)) {
      out.append(r, e);
      const auto* m = std::get_if<MarkerEvent>(&e);
      if (!m || m->kind != MarkerKind::kIterationBegin) continue;
      const auto i = static_cast<std::size_t>(m->id);
      PALS_CHECK_MSG(i < overhead.size(),
                     "no overhead entry for iteration " << m->id);
      PALS_CHECK_MSG(static_cast<std::size_t>(r) < overhead[i].size(),
                     "iteration " << m->id << " has no overhead for rank "
                                  << r);
      const Seconds extra = overhead[i][static_cast<std::size_t>(r)];
      PALS_CHECK_MSG(extra >= 0.0, "negative iteration overhead");
      if (extra > 0.0) out.append(r, ComputeEvent{extra, -1});
    }
  }
  out.validate();
  return out;
}

std::vector<std::vector<Seconds>> iteration_computation_times(
    const Trace& trace) {
  const std::size_t iterations = trace.iteration_count();
  PALS_CHECK_MSG(iterations > 0,
                 "iteration_computation_times requires iteration markers");
  std::vector<std::vector<Seconds>> out(
      iterations,
      std::vector<Seconds>(static_cast<std::size_t>(trace.n_ranks()), 0.0));
  for (Rank r = 0; r < trace.n_ranks(); ++r) {
    std::int32_t iteration = -1;
    for (const Event& e : trace.events(r)) {
      if (const auto* m = std::get_if<MarkerEvent>(&e)) {
        if (m->kind == MarkerKind::kIterationBegin) iteration = m->id;
        if (m->kind == MarkerKind::kIterationEnd) iteration = -1;
        continue;
      }
      const auto* c = std::get_if<ComputeEvent>(&e);
      if (!c || iteration < 0) continue;
      const auto i = static_cast<std::size_t>(iteration);
      PALS_CHECK_MSG(i < iterations,
                     "rank " << r << " iterates past rank 0's count");
      out[i][static_cast<std::size_t>(r)] += c->duration;
    }
  }
  return out;
}

}  // namespace pals
