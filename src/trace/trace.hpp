// Trace container: per-rank logical event streams plus summary queries.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace pals {

/// A logical application trace: one event stream per rank.
///
/// Invariants (enforced by validate()):
///  * every p2p peer is a valid rank and differs from the sender;
///  * every Wait refers to a request posted earlier on the same rank and
///    not yet waited on;
///  * every rank issues the same sequence of collective operations.
class Trace {
public:
  Trace() = default;
  explicit Trace(Rank n_ranks);

  Rank n_ranks() const { return static_cast<Rank>(streams_.size()); }

  std::span<const Event> events(Rank rank) const;
  std::vector<Event>& mutable_events(Rank rank);

  void append(Rank rank, Event event);

  std::size_t total_events() const;

  /// Sum of compute-burst durations of `rank` (reference frequency).
  Seconds computation_time(Rank rank) const;
  /// Computation time restricted to a phase label.
  Seconds computation_time(Rank rank, std::int32_t phase) const;
  /// computation_time for every rank.
  std::vector<Seconds> computation_times() const;

  /// Distinct non-negative phase labels appearing anywhere in the trace,
  /// sorted ascending.
  std::vector<std::int32_t> phases() const;

  /// Number of iterations delimited by iteration markers on rank 0
  /// (0 when unmarked).
  std::size_t iteration_count() const;

  /// Throws pals::Error with a diagnostic if any invariant is violated.
  void validate() const;

  /// Name for reports ("CG-32" etc.); optional, round-trips through IO.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  bool operator==(const Trace&) const = default;

private:
  std::vector<std::vector<Event>> streams_;
  std::string name_;
};

/// Convenience builder used by workload generators: appends events to one
/// rank of a shared Trace with a fluent interface.
class TraceBuilder {
public:
  TraceBuilder(Trace& trace, Rank rank) : trace_(&trace), rank_(rank) {}

  TraceBuilder& compute(Seconds duration, std::int32_t phase = -1);
  TraceBuilder& send(Rank peer, std::int32_t tag, Bytes bytes);
  TraceBuilder& recv(Rank peer, std::int32_t tag, Bytes bytes);
  TraceBuilder& isend(Rank peer, std::int32_t tag, Bytes bytes, RequestId req);
  TraceBuilder& irecv(Rank peer, std::int32_t tag, Bytes bytes, RequestId req);
  TraceBuilder& wait(RequestId req);
  TraceBuilder& waitall();
  TraceBuilder& collective(CollectiveOp op, Bytes bytes, Rank root = 0);
  TraceBuilder& marker(MarkerKind kind, std::int32_t id);

  Rank rank() const { return rank_; }

private:
  Trace* trace_;
  Rank rank_;
};

}  // namespace pals
