// Shared scalar types for the tracing and simulation layers.
#pragma once

#include <cstdint>
#include <string>

namespace pals {

/// MPI rank index within a trace (0-based, dense).
using Rank = std::int32_t;

/// Simulated wall-clock time in seconds.
using Seconds = double;

/// Message payload size in bytes.
using Bytes = std::uint64_t;

/// Rank-local identifier of a non-blocking request.
using RequestId = std::int32_t;

/// Collective operations supported by the replay simulator. All collectives
/// operate on the world communicator (the traced applications are
/// world-collective codes, matching the paper's benchmark set).
enum class CollectiveOp {
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kAllgather,
  kScatter,
  kAlltoall,
  kReduceScatter,
};

/// Parse/format collective names used in the trace text format.
CollectiveOp parse_collective(const std::string& name);
std::string to_string(CollectiveOp op);

/// Marker kinds structure a trace into iterations and computation phases.
/// Iteration markers drive the region cutter; phase markers identify
/// distinct computation phases (e.g. PEPC's two phases per iteration).
enum class MarkerKind {
  kIterationBegin,
  kIterationEnd,
  kPhaseBegin,
  kPhaseEnd,
};

MarkerKind parse_marker(const std::string& name);
std::string to_string(MarkerKind kind);

}  // namespace pals
