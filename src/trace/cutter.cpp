#include "trace/cutter.hpp"

#include "util/error.hpp"

namespace pals {
namespace {

std::size_t count_iterations(const Trace& trace, Rank rank) {
  std::size_t n = 0;
  for (const Event& e : trace.events(rank))
    if (const auto* m = std::get_if<MarkerEvent>(&e))
      if (m->kind == MarkerKind::kIterationEnd) ++n;
  return n;
}

}  // namespace

Trace cut_iterations(const Trace& trace, std::size_t first_iteration,
                     std::size_t count) {
  PALS_CHECK_MSG(count > 0, "cut_iterations requires count > 0");
  Trace out(trace.n_ranks());
  out.set_name(trace.name());

  for (Rank r = 0; r < trace.n_ranks(); ++r) {
    const std::size_t available = count_iterations(trace, r);
    PALS_CHECK_MSG(first_iteration + count <= available,
                   "rank " << r << " has " << available
                           << " iterations; requested ["
                           << first_iteration << ", "
                           << first_iteration + count << ")");
    std::size_t iter = 0;   // current iteration index
    bool inside = false;    // between iter_begin and iter_end
    for (const Event& e : trace.events(r)) {
      if (const auto* m = std::get_if<MarkerEvent>(&e)) {
        if (m->kind == MarkerKind::kIterationBegin) {
          inside = true;
          if (iter >= first_iteration && iter < first_iteration + count) {
            out.append(r, MarkerEvent{MarkerKind::kIterationBegin,
                                      static_cast<std::int32_t>(
                                          iter - first_iteration)});
          }
          continue;
        }
        if (m->kind == MarkerKind::kIterationEnd) {
          if (iter >= first_iteration && iter < first_iteration + count) {
            out.append(r, MarkerEvent{MarkerKind::kIterationEnd,
                                      static_cast<std::int32_t>(
                                          iter - first_iteration)});
          }
          inside = false;
          ++iter;
          continue;
        }
        // Phase markers pass through when inside a kept iteration.
      }
      if (inside && iter >= first_iteration && iter < first_iteration + count)
        out.append(r, e);
    }
  }
  out.validate();
  return out;
}

Trace drop_warmup(const Trace& trace, std::size_t warmup) {
  const std::size_t total = trace.iteration_count();
  PALS_CHECK_MSG(total > warmup,
                 "drop_warmup: trace has " << total << " iterations, cannot "
                 "drop " << warmup);
  return cut_iterations(trace, warmup, total - warmup);
}

}  // namespace pals
