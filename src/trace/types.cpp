#include "trace/types.hpp"

#include "util/error.hpp"

namespace pals {

CollectiveOp parse_collective(const std::string& name) {
  if (name == "barrier") return CollectiveOp::kBarrier;
  if (name == "bcast") return CollectiveOp::kBcast;
  if (name == "reduce") return CollectiveOp::kReduce;
  if (name == "allreduce") return CollectiveOp::kAllreduce;
  if (name == "gather") return CollectiveOp::kGather;
  if (name == "allgather") return CollectiveOp::kAllgather;
  if (name == "scatter") return CollectiveOp::kScatter;
  if (name == "alltoall") return CollectiveOp::kAlltoall;
  if (name == "reducescatter") return CollectiveOp::kReduceScatter;
  throw Error("unknown collective op: " + name);
}

std::string to_string(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kBarrier: return "barrier";
    case CollectiveOp::kBcast: return "bcast";
    case CollectiveOp::kReduce: return "reduce";
    case CollectiveOp::kAllreduce: return "allreduce";
    case CollectiveOp::kGather: return "gather";
    case CollectiveOp::kAllgather: return "allgather";
    case CollectiveOp::kScatter: return "scatter";
    case CollectiveOp::kAlltoall: return "alltoall";
    case CollectiveOp::kReduceScatter: return "reducescatter";
  }
  throw Error("invalid collective op enum value");
}

MarkerKind parse_marker(const std::string& name) {
  if (name == "iter_begin") return MarkerKind::kIterationBegin;
  if (name == "iter_end") return MarkerKind::kIterationEnd;
  if (name == "phase_begin") return MarkerKind::kPhaseBegin;
  if (name == "phase_end") return MarkerKind::kPhaseEnd;
  throw Error("unknown marker kind: " + name);
}

std::string to_string(MarkerKind kind) {
  switch (kind) {
    case MarkerKind::kIterationBegin: return "iter_begin";
    case MarkerKind::kIterationEnd: return "iter_end";
    case MarkerKind::kPhaseBegin: return "phase_begin";
    case MarkerKind::kPhaseEnd: return "phase_end";
  }
  throw Error("invalid marker kind enum value");
}

}  // namespace pals
