// Text serialization of logical traces (.palst format).
//
// Line-oriented, one record per line:
//
//     # pals-trace v1            (required magic comment)
//     name CG-32                 (optional)
//     ranks 32
//     <rank> compute <seconds> [phase=<p>]
//     <rank> send <peer> <tag> <bytes>
//     <rank> recv <peer> <tag> <bytes>
//     <rank> isend <peer> <tag> <bytes> <req>
//     <rank> irecv <peer> <tag> <bytes> <req>
//     <rank> wait <req>
//     <rank> waitall
//     <rank> coll <op> <bytes> <root>
//     <rank> marker <kind> <id>
//
// Blank lines and '#' comments are ignored (except the magic line).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace pals {

/// Process-wide trace I/O counters (all readers: text, binary, auto).
/// The trace library sits below the obs layer, so it keeps its own
/// atomics; obs::record_trace_io mirrors them into a Registry.
struct TraceIoStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t traces_parsed = 0;
};

TraceIoStats trace_io_stats();
void reset_trace_io_stats();

namespace detail {
void trace_io_add_bytes(std::uint64_t bytes);
void trace_io_add_trace();
}  // namespace detail

void write_trace(const Trace& trace, std::ostream& out);
void write_trace_file(const Trace& trace, const std::string& path);

/// Parses a .palst stream; throws pals::Error with a line number on any
/// malformed record. With `validate` (the default) the result must pass
/// Trace::validate(); pass false to load a structurally parseable but
/// semantically broken trace — the static verifier (lint/lint.hpp and
/// tools/pals_lint) reads this way so it can report *all* problems
/// instead of inheriting validate()'s first-error throw.
Trace read_trace(std::istream& in, bool validate = true);
Trace read_trace_file(const std::string& path, bool validate = true);

/// Extension-dispatching loaders/writers: ".palsb" uses the binary format
/// (trace/binary_io.hpp), anything else the text format.
Trace read_trace_auto(const std::string& path, bool validate = true);
void write_trace_auto(const Trace& trace, const std::string& path);

}  // namespace pals
