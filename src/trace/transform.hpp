// Trace transformations applied by the power-analysis pipeline.
//
// The central operation mirrors the paper's tooling: rewrite every compute
// burst's duration by a per-rank scale factor (derived from the chosen
// frequency and the beta time model) and leave communication untouched.
#pragma once

#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace pals {

/// Multiply each compute burst of rank r by `factor[r]`. Factors must be
/// positive and `factor.size()` must equal the rank count.
Trace scale_compute(const Trace& trace, std::span<const double> factor);

/// Phase-aware variant: burst with phase label p on rank r is scaled by
/// `factor[r][p]`; unphased bursts (-1) use `default_factor[r]`.
Trace scale_compute_per_phase(
    const Trace& trace, const std::vector<std::vector<double>>& factor,
    std::span<const double> default_factor);

/// Uniform scale on every rank (used for whole-application slowdown
/// baselines).
Trace scale_compute_uniform(const Trace& trace, double factor);

/// Iteration-aware variant (dynamic DVFS runtimes): bursts inside
/// iteration i on rank r are scaled by `factor[i][r]`; bursts outside any
/// iteration keep their duration. The trace must carry iteration markers
/// and `factor` must cover every iteration index on every rank.
Trace scale_compute_per_iteration(
    const Trace& trace, const std::vector<std::vector<double>>& factor);

/// As above, but bursts outside any iteration are scaled by
/// `default_factor[r]` instead of keeping their duration — the shape the
/// controller pipeline needs, where setup/teardown code runs under the
/// initial gear rather than at the reference frequency.
Trace scale_compute_per_iteration(
    const Trace& trace, const std::vector<std::vector<double>>& factor,
    std::span<const double> default_factor);

/// Per-rank computation time of each iteration: result[i][r]. Requires
/// iteration markers; bursts outside iterations are ignored.
std::vector<std::vector<Seconds>> iteration_computation_times(
    const Trace& trace);

/// Insert an extra computation burst of `overhead[i][r]` seconds right
/// after rank r's iteration-i begin marker (zero entries insert nothing).
/// Models per-iteration runtime costs such as DVFS gear-transition stalls.
Trace add_iteration_overhead(
    const Trace& trace, const std::vector<std::vector<Seconds>>& overhead);

}  // namespace pals
