#include "trace/io.hpp"

#include <atomic>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "trace/binary_io.hpp"
#include "util/fsio.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

std::atomic<std::uint64_t> g_bytes_read{0};
std::atomic<std::uint64_t> g_traces_parsed{0};

constexpr const char* kMagic = "# pals-trace v1";

[[noreturn]] void parse_error(std::size_t line_no, const std::string& line,
                              const std::string& why) {
  std::ostringstream os;
  os << "trace parse error at line " << line_no << " ('" << line
     << "'): " << why;
  throw Error(os.str());
}

}  // namespace

TraceIoStats trace_io_stats() {
  TraceIoStats s;
  s.bytes_read = g_bytes_read.load(std::memory_order_relaxed);
  s.traces_parsed = g_traces_parsed.load(std::memory_order_relaxed);
  return s;
}

void reset_trace_io_stats() {
  g_bytes_read.store(0, std::memory_order_relaxed);
  g_traces_parsed.store(0, std::memory_order_relaxed);
}

namespace detail {

void trace_io_add_bytes(std::uint64_t bytes) {
  g_bytes_read.fetch_add(bytes, std::memory_order_relaxed);
}

void trace_io_add_trace() {
  g_traces_parsed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

void write_trace(const Trace& trace, std::ostream& out) {
  out << kMagic << '\n';
  if (!trace.name().empty()) out << "name " << trace.name() << '\n';
  out << "ranks " << trace.n_ranks() << '\n';
  out.precision(17);
  for (Rank r = 0; r < trace.n_ranks(); ++r) {
    for (const Event& e : trace.events(r)) {
      out << r << ' ' << to_string(e) << '\n';
    }
  }
}

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ostringstream out;
  write_trace(trace, out);
  atomic_write_file(path, out.str());
}

Trace read_trace(std::istream& in, bool validate) {
  std::string line;
  std::size_t line_no = 0;
  bool magic_seen = false;
  std::string name;
  Trace trace;
  bool ranks_seen = false;

  std::uint64_t bytes_read = 0;
  while (std::getline(in, line)) {
    ++line_no;
    bytes_read += line.size() + 1;  // include the newline getline consumed
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (!magic_seen) {
      if (trimmed != kMagic)
        parse_error(line_no, line, "expected magic line '# pals-trace v1'");
      magic_seen = true;
      continue;
    }
    if (trimmed.front() == '#') continue;

    const std::vector<std::string> tok = split_ws(trimmed);
    if (tok[0] == "name") {
      if (tok.size() != 2) parse_error(line_no, line, "name expects 1 field");
      name = tok[1];
      continue;
    }
    if (tok[0] == "ranks") {
      if (tok.size() != 2) parse_error(line_no, line, "ranks expects 1 field");
      const long long n = parse_int(tok[1]);
      if (n <= 0) parse_error(line_no, line, "ranks must be positive");
      trace = Trace(static_cast<Rank>(n));
      ranks_seen = true;
      continue;
    }
    if (!ranks_seen)
      parse_error(line_no, line, "event record before 'ranks' declaration");

    const long long rank_ll = parse_int(tok[0]);
    if (rank_ll < 0 || rank_ll >= trace.n_ranks())
      parse_error(line_no, line, "rank out of range");
    const Rank rank = static_cast<Rank>(rank_ll);
    if (tok.size() < 2) parse_error(line_no, line, "missing event keyword");
    const std::string& kw = tok[1];

    try {
      if (kw == "compute") {
        if (tok.size() != 3 && tok.size() != 4)
          parse_error(line_no, line, "compute expects 1-2 fields");
        ComputeEvent e;
        e.duration = parse_double(tok[2]);
        if (tok.size() == 4) {
          if (!starts_with(tok[3], "phase="))
            parse_error(line_no, line, "expected phase=<p>");
          e.phase = static_cast<std::int32_t>(parse_int(tok[3].substr(6)));
        }
        trace.append(rank, e);
      } else if (kw == "send" || kw == "recv") {
        if (tok.size() != 5)
          parse_error(line_no, line, kw + " expects 3 fields");
        const Rank peer = static_cast<Rank>(parse_int(tok[2]));
        const auto tag = static_cast<std::int32_t>(parse_int(tok[3]));
        const Bytes bytes = static_cast<Bytes>(parse_int(tok[4]));
        if (kw == "send")
          trace.append(rank, SendEvent{peer, tag, bytes});
        else
          trace.append(rank, RecvEvent{peer, tag, bytes});
      } else if (kw == "isend" || kw == "irecv") {
        if (tok.size() != 6)
          parse_error(line_no, line, kw + " expects 4 fields");
        const Rank peer = static_cast<Rank>(parse_int(tok[2]));
        const auto tag = static_cast<std::int32_t>(parse_int(tok[3]));
        const Bytes bytes = static_cast<Bytes>(parse_int(tok[4]));
        const auto req = static_cast<RequestId>(parse_int(tok[5]));
        if (kw == "isend")
          trace.append(rank, IsendEvent{peer, tag, bytes, req});
        else
          trace.append(rank, IrecvEvent{peer, tag, bytes, req});
      } else if (kw == "wait") {
        if (tok.size() != 3) parse_error(line_no, line, "wait expects 1 field");
        trace.append(rank,
                     WaitEvent{static_cast<RequestId>(parse_int(tok[2]))});
      } else if (kw == "waitall") {
        if (tok.size() != 2)
          parse_error(line_no, line, "waitall expects no fields");
        trace.append(rank, WaitAllEvent{});
      } else if (kw == "coll") {
        if (tok.size() != 5) parse_error(line_no, line, "coll expects 3 fields");
        CollectiveEvent e;
        e.op = parse_collective(tok[2]);
        e.bytes = static_cast<Bytes>(parse_int(tok[3]));
        e.root = static_cast<Rank>(parse_int(tok[4]));
        trace.append(rank, e);
      } else if (kw == "marker") {
        if (tok.size() != 4)
          parse_error(line_no, line, "marker expects 2 fields");
        MarkerEvent e;
        e.kind = parse_marker(tok[2]);
        e.id = static_cast<std::int32_t>(parse_int(tok[3]));
        trace.append(rank, e);
      } else {
        parse_error(line_no, line, "unknown event keyword '" + kw + "'");
      }
    } catch (const Error& err) {
      // Re-raise value parse failures with position info.
      if (std::string(err.what()).find("trace parse error") == 0) throw;
      parse_error(line_no, line, err.what());
    }
  }
  if (!magic_seen) throw Error("trace parse error: empty input");
  if (!ranks_seen) throw Error("trace parse error: missing 'ranks' line");
  trace.set_name(name);
  if (validate) trace.validate();
  detail::trace_io_add_bytes(bytes_read);
  detail::trace_io_add_trace();
  return trace;
}

Trace read_trace_file(const std::string& path, bool validate) {
  std::ifstream in(path);
  PALS_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  return read_trace(in, validate);
}

Trace read_trace_auto(const std::string& path, bool validate) {
  if (ends_with(path, ".palsb")) return read_trace_binary_file(path, validate);
  return read_trace_file(path, validate);
}

void write_trace_auto(const Trace& trace, const std::string& path) {
  if (ends_with(path, ".palsb")) {
    write_trace_binary_file(trace, path);
  } else {
    write_trace_file(trace, path);
  }
}

}  // namespace pals
