#include "trace/binary_io.hpp"

#include <fstream>

#include "trace/io.hpp"
#include "util/binio.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"

namespace pals {
namespace {

constexpr char kMagic[] = {'P', 'A', 'L', 'S', 'B', '1'};

enum class Tag : std::uint8_t {
  kCompute = 1,
  kSend = 2,
  kRecv = 3,
  kIsend = 4,
  kIrecv = 5,
  kWait = 6,
  kWaitAll = 7,
  kCollective = 8,
  kMarker = 9,
};

struct Encoder {
  ByteWriter& out;

  void operator()(const ComputeEvent& e) const {
    out.put_u8(static_cast<std::uint8_t>(Tag::kCompute));
    out.put_f64(e.duration);
    out.put_svarint(e.phase);
  }
  void operator()(const SendEvent& e) const {
    out.put_u8(static_cast<std::uint8_t>(Tag::kSend));
    put_p2p(e.peer, e.tag, e.bytes);
  }
  void operator()(const RecvEvent& e) const {
    out.put_u8(static_cast<std::uint8_t>(Tag::kRecv));
    put_p2p(e.peer, e.tag, e.bytes);
  }
  void operator()(const IsendEvent& e) const {
    out.put_u8(static_cast<std::uint8_t>(Tag::kIsend));
    put_p2p(e.peer, e.tag, e.bytes);
    out.put_svarint(e.request);
  }
  void operator()(const IrecvEvent& e) const {
    out.put_u8(static_cast<std::uint8_t>(Tag::kIrecv));
    put_p2p(e.peer, e.tag, e.bytes);
    out.put_svarint(e.request);
  }
  void operator()(const WaitEvent& e) const {
    out.put_u8(static_cast<std::uint8_t>(Tag::kWait));
    out.put_svarint(e.request);
  }
  void operator()(const WaitAllEvent&) const {
    out.put_u8(static_cast<std::uint8_t>(Tag::kWaitAll));
  }
  void operator()(const CollectiveEvent& e) const {
    out.put_u8(static_cast<std::uint8_t>(Tag::kCollective));
    out.put_varint(static_cast<std::uint64_t>(e.op));
    out.put_varint(e.bytes);
    out.put_svarint(e.root);
  }
  void operator()(const MarkerEvent& e) const {
    out.put_u8(static_cast<std::uint8_t>(Tag::kMarker));
    out.put_varint(static_cast<std::uint64_t>(e.kind));
    out.put_svarint(e.id);
  }

  void put_p2p(Rank peer, std::int32_t tag, Bytes bytes) const {
    out.put_svarint(peer);
    out.put_svarint(tag);
    out.put_varint(bytes);
  }
};

Event decode_event(ByteReader& in) {
  const auto tag = static_cast<Tag>(in.get_u8());
  const auto get_rank = [&] { return static_cast<Rank>(in.get_svarint()); };
  const auto get_tag = [&] {
    return static_cast<std::int32_t>(in.get_svarint());
  };
  const auto get_req = [&] {
    return static_cast<RequestId>(in.get_svarint());
  };
  switch (tag) {
    case Tag::kCompute: {
      ComputeEvent e;
      e.duration = in.get_f64();
      e.phase = static_cast<std::int32_t>(in.get_svarint());
      return e;
    }
    case Tag::kSend: {
      SendEvent e;
      e.peer = get_rank();
      e.tag = get_tag();
      e.bytes = in.get_varint();
      return e;
    }
    case Tag::kRecv: {
      RecvEvent e;
      e.peer = get_rank();
      e.tag = get_tag();
      e.bytes = in.get_varint();
      return e;
    }
    case Tag::kIsend: {
      IsendEvent e;
      e.peer = get_rank();
      e.tag = get_tag();
      e.bytes = in.get_varint();
      e.request = get_req();
      return e;
    }
    case Tag::kIrecv: {
      IrecvEvent e;
      e.peer = get_rank();
      e.tag = get_tag();
      e.bytes = in.get_varint();
      e.request = get_req();
      return e;
    }
    case Tag::kWait: {
      WaitEvent e;
      e.request = get_req();
      return e;
    }
    case Tag::kWaitAll:
      return WaitAllEvent{};
    case Tag::kCollective: {
      CollectiveEvent e;
      const std::uint64_t op = in.get_varint();
      PALS_CHECK_MSG(
          op <= static_cast<std::uint64_t>(CollectiveOp::kReduceScatter),
          "invalid collective op id " << op);
      e.op = static_cast<CollectiveOp>(op);
      e.bytes = in.get_varint();
      e.root = get_rank();
      return e;
    }
    case Tag::kMarker: {
      MarkerEvent e;
      const std::uint64_t kind = in.get_varint();
      PALS_CHECK_MSG(kind <= static_cast<std::uint64_t>(MarkerKind::kPhaseEnd),
                     "invalid marker kind id " << kind);
      e.kind = static_cast<MarkerKind>(kind);
      e.id = static_cast<std::int32_t>(in.get_svarint());
      return e;
    }
  }
  throw Error("unknown binary event tag " +
              std::to_string(static_cast<int>(tag)));
}

}  // namespace

std::vector<std::uint8_t> write_trace_binary(const Trace& trace) {
  ByteWriter out;
  out.put_raw(kMagic, sizeof(kMagic));
  out.put_varint(static_cast<std::uint64_t>(trace.n_ranks()));
  out.put_string(trace.name());
  const Encoder encoder{out};
  for (Rank r = 0; r < trace.n_ranks(); ++r) {
    const auto events = trace.events(r);
    out.put_varint(events.size());
    for (const Event& e : events) std::visit(encoder, e);
  }
  return out.buffer();
}

void write_trace_binary_file(const Trace& trace, const std::string& path) {
  const std::vector<std::uint8_t> buffer = write_trace_binary(trace);
  atomic_write_file(
      path, std::string_view(reinterpret_cast<const char*>(buffer.data()),
                             buffer.size()));
}

Trace read_trace_binary(const std::uint8_t* data, std::size_t size,
                        bool validate) {
  ByteReader in(data, size);
  PALS_CHECK_MSG(in.remaining() >= sizeof(kMagic),
                 "not a .palsb trace: " << size << " bytes, need at least "
                                        << sizeof(kMagic)
                                        << " for the PALSB1 magic");
  for (const char c : kMagic) {
    const std::size_t at = in.offset();
    const std::uint8_t byte = in.get_u8();
    PALS_CHECK_MSG(byte == static_cast<std::uint8_t>(c),
                   "not a .palsb trace: bad magic byte at offset "
                       << at << " (expected 0x" << std::hex
                       << static_cast<int>(static_cast<std::uint8_t>(c))
                       << ", got 0x" << static_cast<int>(byte) << std::dec
                       << ")");
  }
  const std::size_t ranks_at = in.offset();
  const std::uint64_t n_ranks = in.get_varint();
  PALS_CHECK_MSG(n_ranks > 0 && n_ranks <= 1u << 24,
                 "implausible rank count " << n_ranks << " at offset "
                                           << ranks_at);
  // Each rank contributes at least a one-byte event count, so a rank
  // count beyond the remaining bytes is corrupt — reject it before
  // sizing any per-rank storage from the hostile value.
  PALS_CHECK_MSG(n_ranks <= in.remaining(),
                 "rank count " << n_ranks << " at offset " << ranks_at
                               << " exceeds remaining " << in.remaining()
                               << " input bytes");
  Trace trace(static_cast<Rank>(n_ranks));
  trace.set_name(in.get_string());
  for (Rank r = 0; r < trace.n_ranks(); ++r) {
    const std::size_t count_at = in.offset();
    const std::uint64_t count = in.get_varint();
    // Every encoded event starts with a one-byte tag, bounding the
    // plausible count by the bytes left; this turns an oversized length
    // field into a diagnostic instead of an allocation-sized-by-attacker.
    PALS_CHECK_MSG(count <= in.remaining(),
                   "rank " << r << ": event count " << count << " at offset "
                           << count_at << " exceeds remaining "
                           << in.remaining() << " input bytes");
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::size_t event_at = in.offset();
      try {
        trace.append(r, decode_event(in));
      } catch (const Error& e) {
        throw Error("rank " + std::to_string(r) + ", event " +
                    std::to_string(i) + " of " + std::to_string(count) +
                    " (offset " + std::to_string(event_at) +
                    "): " + e.what());
      }
    }
  }
  PALS_CHECK_MSG(in.exhausted(), in.remaining()
                                     << " trailing bytes after binary trace "
                                        "(events end at offset "
                                     << in.offset() << " of " << size << ")");
  if (validate) trace.validate();
  detail::trace_io_add_bytes(size);
  detail::trace_io_add_trace();
  return trace;
}

Trace read_trace_binary(const std::vector<std::uint8_t>& buffer,
                        bool validate) {
  return read_trace_binary(buffer.data(), buffer.size(), validate);
}

Trace read_trace_binary_file(const std::string& path, bool validate) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  PALS_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(buffer.data()), size);
  PALS_CHECK_MSG(in.good(), "read failure on '" << path << "'");
  return read_trace_binary(buffer, validate);
}

}  // namespace pals
