// Iterative-region extraction (the Paraver "trace cutting" step).
//
// The paper analyzes exactly one steady-state iterative region per
// application, discarding initialization. The cutter extracts the events
// between iteration markers [first_iteration, first_iteration + count) on
// every rank.
#pragma once

#include <cstddef>

#include "trace/trace.hpp"

namespace pals {

/// Extract `count` iterations starting at `first_iteration` (0-based).
/// Requires the trace to carry iteration markers on every rank and every
/// rank to contain the requested range. Markers are preserved (re-numbered
/// from 0) so cut traces remain cuttable.
Trace cut_iterations(const Trace& trace, std::size_t first_iteration,
                     std::size_t count);

/// Convenience: drop `warmup` iterations, keep everything after.
Trace drop_warmup(const Trace& trace, std::size_t warmup);

}  // namespace pals
