#include "lint/lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pals {
namespace lint {
namespace {

/// Ordered p2p channel; FIFO matching per key mirrors MPI non-overtaking.
struct ChannelKey {
  Rank src;
  Rank dst;
  std::int32_t tag;

  bool operator<(const ChannelKey& o) const {
    if (src != o.src) return src < o.src;
    if (dst != o.dst) return dst < o.dst;
    return tag < o.tag;
  }
};

/// One side of a p2p operation, for the static match graph.
struct MatchSite {
  Rank rank = 0;
  std::int64_t event_index = 0;
  Bytes bytes = 0;
  bool blocking = true;
};

const char* send_kind(const MatchSite& site) {
  return site.blocking ? "send" : "isend";
}

const char* recv_kind(const MatchSite& site) {
  return site.blocking ? "recv" : "irecv";
}

std::string rank_list(const std::vector<Rank>& ranks) {
  std::ostringstream os;
  os << (ranks.size() == 1 ? "rank " : "ranks ");
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) os << ", ";
    os << ranks[i];
  }
  return os.str();
}

class Linter {
 public:
  Linter(const Trace& trace, const LintOptions& options)
      : trace_(trace), options_(options), n_(trace.n_ranks()) {}

  LintReport run() {
    if (n_ == 0) {
      add(Code::kEmptyTrace, -1, -1, "trace has zero ranks");
      return finish();
    }
    per_rank_pass();
    match_graph_pass();
    collective_pass();
    if (options_.deadlock && !structural_error_) {
      const DeadlockInfo info = analyze_deadlock(trace_, options_.eager_threshold);
      if (info.deadlocked) report_deadlock(info);
    }
    return finish();
  }

 private:
  void add(Code code, Rank rank, std::int64_t event_index, std::string message) {
    diagnostics_.push_back(Diagnostic{severity_of(code), rank, event_index,
                                      code, std::move(message)});
  }

  bool valid_peer(Rank rank, Rank peer) const {
    return peer >= 0 && peer < n_ && peer != rank;
  }

  /// Pass 3: per-rank discipline and data hygiene. Also records which
  /// structural errors poison the abstract machine (pass 4).
  void per_rank_pass() {
    for (Rank r = 0; r < n_; ++r) {
      const std::span<const Event> stream = trace_.events(r);
      if (stream.empty()) {
        add(Code::kEmptyRank, r, -1, "rank has no events");
        continue;
      }
      // Open requests: id -> posting event index (insertion-ordered report).
      std::map<RequestId, std::pair<std::int64_t, std::string>> open;
      // Open iteration frames: {begin index, id, saw a payload event}.
      struct IterFrame {
        std::int64_t begin_index;
        std::int32_t id;
        bool payload = false;
      };
      std::vector<IterFrame> iterations;
      std::int64_t phase_depth = 0;

      for (std::size_t i = 0; i < stream.size(); ++i) {
        const auto index = static_cast<std::int64_t>(i);
        const Event& e = stream[i];
        if (!iterations.empty() && !std::holds_alternative<MarkerEvent>(e))
          iterations.back().payload = true;

        if (const auto* c = std::get_if<ComputeEvent>(&e)) {
          if (!std::isfinite(c->duration)) {
            std::ostringstream os;
            os << "compute duration is " << c->duration;
            add(Code::kNonFiniteDuration, r, index, os.str());
          } else if (c->duration < 0.0) {
            std::ostringstream os;
            os << "compute duration is negative (" << c->duration << " s)";
            add(Code::kNegativeDuration, r, index, os.str());
          } else if (c->duration == 0.0) {
            add(Code::kZeroDuration, r, index, "zero-length compute burst");
          } else if (c->duration > options_.huge_duration) {
            std::ostringstream os;
            os << "compute burst of " << c->duration << " s exceeds "
               << options_.huge_duration << " s";
            add(Code::kHugeDuration, r, index, os.str());
          }
        } else if (const auto* s = std::get_if<SendEvent>(&e)) {
          check_peer(r, index, s->peer, "send");
        } else if (const auto* v = std::get_if<RecvEvent>(&e)) {
          check_peer(r, index, v->peer, "recv");
        } else if (const auto* is = std::get_if<IsendEvent>(&e)) {
          check_peer(r, index, is->peer, "isend");
          open_request(open, r, index, is->request,
                       "isend to rank " + std::to_string(is->peer));
        } else if (const auto* ir = std::get_if<IrecvEvent>(&e)) {
          check_peer(r, index, ir->peer, "irecv");
          open_request(open, r, index, ir->request,
                       "irecv from rank " + std::to_string(ir->peer));
        } else if (const auto* w = std::get_if<WaitEvent>(&e)) {
          if (open.erase(w->request) == 0) {
            structural_error_ = true;
            add(Code::kWaitUnknownRequest, r, index,
                "wait on request " + std::to_string(w->request) +
                    " which is not open (never posted, or already waited)");
          }
        } else if (std::holds_alternative<WaitAllEvent>(e)) {
          if (open.empty())
            add(Code::kWaitAllNoPending, r, index,
                "waitall with no open requests (no-op)");
          open.clear();
        } else if (const auto* coll = std::get_if<CollectiveEvent>(&e)) {
          if (coll->root < 0 || coll->root >= n_) {
            std::ostringstream os;
            os << to_string(coll->op) << " root " << coll->root
               << " is outside 0.." << (n_ - 1);
            add(Code::kCollectiveRootOutOfRange, r, index, os.str());
          }
        } else if (const auto* m = std::get_if<MarkerEvent>(&e)) {
          switch (m->kind) {
            case MarkerKind::kIterationBegin:
              iterations.push_back(IterFrame{index, m->id});
              break;
            case MarkerKind::kIterationEnd:
              if (iterations.empty()) {
                add(Code::kUnbalancedMarkers, r, index,
                    "iteration end marker without a matching begin");
              } else {
                const IterFrame frame = iterations.back();
                iterations.pop_back();
                if (!frame.payload)
                  add(Code::kEmptyIteration, r, frame.begin_index,
                      "iteration " + std::to_string(frame.id) +
                          " contains no compute or communication events");
              }
              break;
            case MarkerKind::kPhaseBegin: ++phase_depth; break;
            case MarkerKind::kPhaseEnd:
              if (phase_depth == 0)
                add(Code::kUnbalancedMarkers, r, index,
                    "phase end marker without a matching begin");
              else
                --phase_depth;
              break;
          }
        }
      }

      for (const auto& [req, site] : open)
        add(Code::kRequestNeverWaited, r, site.first,
            "request " + std::to_string(req) + " (" + site.second +
                ") still open at end of trace");
      for (const IterFrame& frame : iterations)
        add(Code::kUnbalancedMarkers, r, frame.begin_index,
            "iteration begin marker without a matching end");
      if (phase_depth > 0) {
        std::ostringstream os;
        os << phase_depth << " phase begin marker(s) without a matching end";
        add(Code::kUnbalancedMarkers, r,
            static_cast<std::int64_t>(stream.size()) - 1, os.str());
      }
    }
  }

  void check_peer(Rank rank, std::int64_t index, Rank peer, const char* kind) {
    if (peer < 0 || peer >= n_) {
      structural_error_ = true;
      std::ostringstream os;
      os << kind << " peer " << peer << " is outside 0.." << (n_ - 1);
      add(Code::kPeerOutOfRange, rank, index, os.str());
    } else if (peer == rank) {
      structural_error_ = true;
      add(Code::kSelfMessage, rank, index,
          std::string(kind) + " targets its own rank");
    }
  }

  void open_request(
      std::map<RequestId, std::pair<std::int64_t, std::string>>& open,
      Rank rank, std::int64_t index, RequestId request, std::string what) {
    const auto [it, inserted] =
        open.emplace(request, std::make_pair(index, std::move(what)));
    if (!inserted) {
      structural_error_ = true;
      add(Code::kRequestAlreadyOpen, rank, index,
          "request " + std::to_string(request) +
              " re-posted while still open (opened at event " +
              std::to_string(it->second.first) + ")");
    }
  }

  /// Pass 1: the cross-rank match graph. Events with invalid peers are
  /// excluded (already reported by pass 3).
  void match_graph_pass() {
    std::map<ChannelKey, std::vector<MatchSite>> sends;
    std::map<ChannelKey, std::vector<MatchSite>> recvs;
    for (Rank r = 0; r < n_; ++r) {
      const std::span<const Event> stream = trace_.events(r);
      for (std::size_t i = 0; i < stream.size(); ++i) {
        const auto index = static_cast<std::int64_t>(i);
        if (const auto* s = std::get_if<SendEvent>(&stream[i])) {
          if (valid_peer(r, s->peer))
            sends[{r, s->peer, s->tag}].push_back(
                MatchSite{r, index, s->bytes, true});
        } else if (const auto* is = std::get_if<IsendEvent>(&stream[i])) {
          if (valid_peer(r, is->peer))
            sends[{r, is->peer, is->tag}].push_back(
                MatchSite{r, index, is->bytes, false});
        } else if (const auto* v = std::get_if<RecvEvent>(&stream[i])) {
          if (valid_peer(r, v->peer))
            recvs[{v->peer, r, v->tag}].push_back(
                MatchSite{r, index, v->bytes, true});
        } else if (const auto* ir = std::get_if<IrecvEvent>(&stream[i])) {
          if (valid_peer(r, ir->peer))
            recvs[{ir->peer, r, ir->tag}].push_back(
                MatchSite{r, index, ir->bytes, false});
        }
      }
    }

    const std::vector<MatchSite> kNone;
    std::set<ChannelKey> channels;
    for (const auto& [key, sites] : sends) channels.insert(key);
    for (const auto& [key, sites] : recvs) channels.insert(key);
    for (const ChannelKey& key : channels) {
      const auto s_it = sends.find(key);
      const auto r_it = recvs.find(key);
      const std::vector<MatchSite>& s = s_it == sends.end() ? kNone : s_it->second;
      const std::vector<MatchSite>& v = r_it == recvs.end() ? kNone : r_it->second;
      const std::size_t paired = std::min(s.size(), v.size());
      for (std::size_t k = 0; k < paired; ++k) {
        if (s[k].bytes != v[k].bytes) {
          std::ostringstream os;
          os << recv_kind(v[k]) << " expects " << v[k].bytes
             << " bytes but matching " << send_kind(s[k]) << " (rank "
             << key.src << " event " << s[k].event_index << ") carries "
             << s[k].bytes << " bytes";
          add(Code::kBytesMismatch, key.dst, v[k].event_index, os.str());
        }
      }
      for (std::size_t k = paired; k < s.size(); ++k) {
        std::ostringstream os;
        os << send_kind(s[k]) << " to rank " << key.dst << " (tag " << key.tag
           << ", " << s[k].bytes << " bytes) never matched by a recv";
        add(Code::kUnmatchedSend, key.src, s[k].event_index, os.str());
      }
      for (std::size_t k = paired; k < v.size(); ++k) {
        std::ostringstream os;
        os << recv_kind(v[k]) << " from rank " << key.src << " (tag " << key.tag
           << ", " << v[k].bytes << " bytes) never matched by a send";
        add(Code::kUnmatchedRecv, key.dst, v[k].event_index, os.str());
      }
    }
  }

  /// Pass 2: collective participation, rank 0 as reference (matching
  /// Trace::validate(), but exhaustive and position-precise).
  void collective_pass() {
    struct CollSite {
      CollectiveOp op;
      Rank root;
      std::int64_t event_index;
    };
    std::vector<std::vector<CollSite>> per_rank(static_cast<std::size_t>(n_));
    for (Rank r = 0; r < n_; ++r) {
      const std::span<const Event> stream = trace_.events(r);
      for (std::size_t i = 0; i < stream.size(); ++i)
        if (const auto* c = std::get_if<CollectiveEvent>(&stream[i]))
          per_rank[static_cast<std::size_t>(r)].push_back(
              CollSite{c->op, c->root, static_cast<std::int64_t>(i)});
    }
    const std::vector<CollSite>& reference = per_rank[0];
    for (Rank r = 1; r < n_; ++r) {
      const std::vector<CollSite>& mine = per_rank[static_cast<std::size_t>(r)];
      const std::size_t common = std::min(mine.size(), reference.size());
      for (std::size_t k = 0; k < common; ++k) {
        if (mine[k].op != reference[k].op) {
          std::ostringstream os;
          os << "collective " << k << " is " << to_string(mine[k].op)
             << " but rank 0 issues " << to_string(reference[k].op)
             << " (event " << reference[k].event_index << ")";
          add(Code::kCollectiveKindMismatch, r, mine[k].event_index, os.str());
        } else if (mine[k].root != reference[k].root) {
          std::ostringstream os;
          os << "collective " << k << " (" << to_string(mine[k].op)
             << ") uses root " << mine[k].root << " but rank 0 uses root "
             << reference[k].root;
          add(Code::kCollectiveRootMismatch, r, mine[k].event_index, os.str());
        }
      }
      if (mine.size() != reference.size()) {
        std::ostringstream os;
        os << "rank issues " << mine.size() << " collectives but rank 0 issues "
           << reference.size();
        const std::int64_t anchor =
            mine.size() > reference.size() ? mine[common].event_index : -1;
        add(Code::kCollectiveCountMismatch, r, anchor, os.str());
      }
    }
  }

  void report_deadlock(const DeadlockInfo& info) {
    for (const BlockedRank& b : info.blocked) {
      std::ostringstream os;
      os << "blocked at " << b.event << ", waiting on "
         << rank_list(b.waiting_on);
      add(Code::kDeadlock, b.rank, static_cast<std::int64_t>(b.event_index),
          os.str());
    }
    std::ostringstream os;
    if (!info.cycle.empty()) {
      os << "dependency cycle: ";
      for (const Rank r : info.cycle) os << "rank " << r << " -> ";
      os << "rank " << info.cycle.front();
    } else {
      os << "starvation: a blocked rank waits on a rank that already finished";
    }
    add(Code::kDeadlock, -1, -1, os.str());
  }

  LintReport finish() {
    LintReport report;
    for (const Diagnostic& d : diagnostics_) {
      switch (d.severity) {
        case Severity::kError: ++report.errors; break;
        case Severity::kWarning: ++report.warnings; break;
        case Severity::kInfo: ++report.infos; break;
      }
    }
    // Canonical order: per-rank findings by (rank, event index), trace-level
    // findings (rank -1) last. Stable so same-site diagnostics keep pass
    // order.
    std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       const auto key = [](const Diagnostic& d) {
                         return std::make_pair(
                             d.rank < 0 ? std::numeric_limits<Rank>::max()
                                        : d.rank,
                             d.event_index < 0
                                 ? std::numeric_limits<std::int64_t>::max()
                                 : d.event_index);
                       };
                       return key(a) < key(b);
                     });
    if (options_.max_diagnostics > 0 &&
        diagnostics_.size() > options_.max_diagnostics) {
      report.dropped = diagnostics_.size() - options_.max_diagnostics;
      diagnostics_.resize(options_.max_diagnostics);
    }
    report.diagnostics = std::move(diagnostics_);
    return report;
  }

  const Trace& trace_;
  const LintOptions& options_;
  const Rank n_;
  std::vector<Diagnostic> diagnostics_;
  /// True when pass-1/3 errors make the abstract machine meaningless.
  bool structural_error_ = false;
};

// ---------------------------------------------------------------------------
// Abstract replay: the matching semantics of replay/replay.cpp without time.

struct PendSend {
  bool eager = false;
  bool blocking = false;
  RequestId request = -1;
};

struct PendRecv {
  bool blocking = false;
  RequestId request = -1;
};

enum class Block { kNone, kSend, kRecv, kWait, kWaitAll, kCollective };

class AbstractMachine {
 public:
  AbstractMachine(const Trace& trace, Bytes eager_threshold)
      : trace_(trace),
        threshold_(eager_threshold),
        n_(trace.n_ranks()),
        ranks_(static_cast<std::size_t>(trace.n_ranks())) {
    for (Rank r = 0; r < n_; ++r) ctx(r).stream = trace.events(r);
  }

  DeadlockInfo run() {
    for (Rank r = 0; r < n_; ++r) runnable_.push_back(r);
    while (!runnable_.empty()) {
      const Rank r = runnable_.front();
      runnable_.pop_front();
      advance(r);
    }
    return diagnose();
  }

 private:
  struct RankCtx {
    std::span<const Event> stream;
    std::size_t cursor = 0;
    bool finished = false;

    Block block = Block::kNone;
    Rank block_peer = -1;          ///< kSend/kRecv target
    RequestId waiting_request = -1;  ///< kWait
    std::size_t collective_slot = 0; ///< kCollective

    std::map<RequestId, Rank> open;       ///< posted, counterpart not seen
    std::set<RequestId> completed;        ///< counterpart seen, not waited
    std::size_t collective_index = 0;
  };

  RankCtx& ctx(Rank r) { return ranks_[static_cast<std::size_t>(r)]; }

  void advance(Rank r) {
    RankCtx& c = ctx(r);
    while (c.cursor < c.stream.size()) {
      bool blocked = false;
      std::visit([&](const auto& ev) { blocked = !handle(r, ev); },
                 c.stream[c.cursor]);
      if (blocked) return;
      ++c.cursor;
    }
    c.finished = true;
  }

  bool handle(Rank, const ComputeEvent&) { return true; }
  bool handle(Rank, const MarkerEvent&) { return true; }

  bool handle(Rank r, const SendEvent& e) {
    return post_send(r, e.peer, e.tag, e.bytes, true, -1);
  }
  bool handle(Rank r, const IsendEvent& e) {
    return post_send(r, e.peer, e.tag, e.bytes, false, e.request);
  }
  bool handle(Rank r, const RecvEvent& e) {
    return post_recv(r, e.peer, e.tag, true, -1);
  }
  bool handle(Rank r, const IrecvEvent& e) {
    return post_recv(r, e.peer, e.tag, false, e.request);
  }

  bool handle(Rank r, const WaitEvent& e) {
    RankCtx& c = ctx(r);
    if (c.completed.erase(e.request) == 1) return true;
    PALS_CHECK_MSG(c.open.count(e.request),
                   "lint machine: rank " << r << " waits on unknown request "
                                         << e.request);
    c.block = Block::kWait;
    c.waiting_request = e.request;
    return false;
  }

  bool handle(Rank r, const WaitAllEvent&) {
    RankCtx& c = ctx(r);
    if (c.open.empty()) {
      c.completed.clear();
      return true;
    }
    c.block = Block::kWaitAll;
    return false;
  }

  bool handle(Rank r, const CollectiveEvent&) {
    RankCtx& c = ctx(r);
    const std::size_t k = c.collective_index++;
    if (k >= arrivals_.size()) arrivals_.resize(k + 1);
    arrivals_[k].push_back(r);
    c.block = Block::kCollective;
    c.collective_slot = k;
    if (arrivals_[k].size() == static_cast<std::size_t>(n_)) {
      for (const Rank rank : arrivals_[k]) resume(rank);
    }
    return false;  // even the last arriver resumes through resume()
  }

  bool post_send(Rank r, Rank peer, std::int32_t tag, Bytes bytes,
                 bool blocking, RequestId request) {
    RankCtx& c = ctx(r);
    const bool eager = bytes <= threshold_;
    auto& recvs = pending_recvs_[{r, peer, tag}];
    if (!recvs.empty()) {
      const PendRecv rv = recvs.front();
      recvs.pop_front();
      if (rv.blocking) {
        resume(peer);
      } else {
        complete_request_remote(peer, rv.request);
      }
      if (!blocking) c.completed.insert(request);
      return true;
    }
    pending_sends_[{r, peer, tag}].push_back(
        PendSend{eager, blocking, request});
    if (eager) {
      // The payload leaves regardless of the receiver; the sender (and a
      // non-blocking sender's request) completes immediately.
      if (!blocking) c.completed.insert(request);
      return true;
    }
    if (blocking) {
      c.block = Block::kSend;
      c.block_peer = peer;
      return false;
    }
    c.open.emplace(request, peer);
    return true;
  }

  bool post_recv(Rank r, Rank peer, std::int32_t tag, bool blocking,
                 RequestId request) {
    RankCtx& c = ctx(r);
    auto& sends = pending_sends_[{peer, r, tag}];
    if (!sends.empty()) {
      const PendSend sd = sends.front();
      sends.pop_front();
      if (!sd.eager) {
        // Release or complete the sender half of the rendezvous.
        if (sd.blocking) {
          resume(peer);
        } else {
          complete_request_remote(peer, sd.request);
        }
      }
      if (!blocking) c.completed.insert(request);
      return true;
    }
    pending_recvs_[{peer, r, tag}].push_back(PendRecv{blocking, request});
    if (blocking) {
      c.block = Block::kRecv;
      c.block_peer = peer;
      return false;
    }
    c.open.emplace(request, peer);
    return true;
  }

  void complete_request_remote(Rank r, RequestId request) {
    RankCtx& c = ctx(r);
    c.open.erase(request);
    c.completed.insert(request);
    if (c.block == Block::kWait && c.waiting_request == request) {
      c.completed.erase(request);
      c.waiting_request = -1;
      resume(r);
    } else if (c.block == Block::kWaitAll && c.open.empty()) {
      c.completed.clear();
      resume(r);
    }
  }

  void resume(Rank r) {
    RankCtx& c = ctx(r);
    PALS_CHECK_MSG(c.block != Block::kNone,
                   "lint machine: resume of non-blocked rank " << r);
    c.block = Block::kNone;
    c.block_peer = -1;
    ++c.cursor;  // the blocking event is done
    runnable_.push_back(r);
  }

  std::vector<Rank> waiting_on(const RankCtx& c) const {
    std::vector<Rank> peers;
    switch (c.block) {
      case Block::kSend:
      case Block::kRecv:
        peers.push_back(c.block_peer);
        break;
      case Block::kWait: {
        const auto it = c.open.find(c.waiting_request);
        if (it != c.open.end()) peers.push_back(it->second);
        break;
      }
      case Block::kWaitAll:
        for (const auto& [req, peer] : c.open) peers.push_back(peer);
        break;
      case Block::kCollective: {
        std::vector<bool> arrived(static_cast<std::size_t>(n_), false);
        for (const Rank rank : arrivals_[c.collective_slot])
          arrived[static_cast<std::size_t>(rank)] = true;
        for (Rank rank = 0; rank < n_; ++rank)
          if (!arrived[static_cast<std::size_t>(rank)]) peers.push_back(rank);
        break;
      }
      case Block::kNone:
        break;
    }
    std::sort(peers.begin(), peers.end());
    peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
    return peers;
  }

  DeadlockInfo diagnose() {
    DeadlockInfo info;
    std::map<Rank, std::vector<Rank>> edges;
    for (Rank r = 0; r < n_; ++r) {
      const RankCtx& c = ctx(r);
      if (c.finished) continue;
      info.deadlocked = true;
      BlockedRank b;
      b.rank = r;
      b.event_index = c.cursor;
      b.stream_size = c.stream.size();
      b.event = c.cursor < c.stream.size() ? to_string(c.stream[c.cursor])
                                           : "<end of stream>";
      b.waiting_on = waiting_on(c);
      edges.emplace(r, b.waiting_on);
      info.blocked.push_back(std::move(b));
    }
    if (!info.deadlocked) return info;
    info.cycle = find_cycle(edges);
    return info;
  }

  /// DFS over the blocked-rank wait-for graph; returns the first cycle in
  /// ascending-rank order, or empty (pure starvation).
  std::vector<Rank> find_cycle(
      const std::map<Rank, std::vector<Rank>>& edges) const {
    std::map<Rank, int> color;  // 0 white, 1 gray, 2 black
    std::vector<Rank> path;
    std::vector<Rank> cycle;

    const std::function<bool(Rank)> visit = [&](Rank r) {
      color[r] = 1;
      path.push_back(r);
      const auto it = edges.find(r);
      if (it != edges.end()) {
        for (const Rank next : it->second) {
          if (edges.find(next) == edges.end()) continue;  // finished rank
          const int c = color[next];
          if (c == 1) {
            const auto start = std::find(path.begin(), path.end(), next);
            cycle.assign(start, path.end());
            return true;
          }
          if (c == 0 && visit(next)) return true;
        }
      }
      color[r] = 2;
      path.pop_back();
      return false;
    };
    for (const auto& [r, targets] : edges) {
      if (color[r] == 0 && visit(r)) return cycle;
    }
    return {};
  }

  const Trace& trace_;
  const Bytes threshold_;
  const Rank n_;
  std::vector<RankCtx> ranks_;
  std::deque<Rank> runnable_;
  std::map<ChannelKey, std::deque<PendSend>> pending_sends_;
  std::map<ChannelKey, std::deque<PendRecv>> pending_recvs_;
  std::vector<std::vector<Rank>> arrivals_;  ///< per collective slot
};

}  // namespace

LintReport lint_trace(const Trace& trace, const LintOptions& options) {
  LintReport report = Linter(trace, options).run();

  // Per-code diagnostic counts (post-sort, pre-truncation diagnostics all
  // survive in the severity totals; count the retained list per code).
  obs::Registry& reg = obs::default_registry();
  reg.counter("lint.runs").add(1);
  reg.counter("lint.diagnostics").add(report.diagnostics.size() +
                                      report.dropped);
  for (const Diagnostic& d : report.diagnostics)
    reg.counter("lint.diag." + to_string(d.code)).add(1);
  return report;
}

void enforce_lint(const Trace& trace, const LintOptions& options,
                  const std::string& context) {
  const LintReport report = lint_trace(trace, options);
  if (!report.has_errors()) return;
  std::string message = "trace lint failed";
  if (!context.empty()) message += " for " + context;
  message += ":\n" + to_text(report);
  throw Error(message);
}

CommVolume comm_volume(const Trace& trace) {
  CommVolume volume;
  const Rank n = trace.n_ranks();
  // Per-rank collective programs (op ignored for ranks > 0: replay takes
  // the op from the slot's first arrival, lint checks agreement against
  // rank 0, and bounds follow lint).
  std::vector<std::vector<CollectiveSlot>> programs(
      static_cast<std::size_t>(std::max<Rank>(n, 0)));
  for (Rank r = 0; r < n; ++r) {
    for (const Event& e : trace.events(r)) {
      const auto count_send = [&](Rank peer, Bytes bytes) {
        if (peer < 0 || peer >= n || peer == r) return;
        ++volume.messages;
        volume.total_bytes += bytes;
      };
      if (const auto* s = std::get_if<SendEvent>(&e)) {
        count_send(s->peer, s->bytes);
      } else if (const auto* is = std::get_if<IsendEvent>(&e)) {
        count_send(is->peer, is->bytes);
      } else if (const auto* c = std::get_if<CollectiveEvent>(&e)) {
        programs[static_cast<std::size_t>(r)].push_back(
            CollectiveSlot{c->op, c->bytes});
      }
    }
  }
  if (n == 0) return volume;
  std::size_t slots = programs[0].size();
  for (const auto& program : programs) slots = std::min(slots, program.size());
  volume.collectives.reserve(slots);
  for (std::size_t k = 0; k < slots; ++k) {
    CollectiveSlot slot = programs[0][k];
    for (const auto& program : programs)
      slot.max_bytes = std::max(slot.max_bytes, program[k].max_bytes);
    volume.collectives.push_back(slot);
  }
  return volume;
}

std::string DeadlockInfo::describe() const {
  if (!deadlocked) return "";
  std::ostringstream os;
  for (const BlockedRank& b : blocked) {
    os << "\n  rank " << b.rank << " stuck at event " << b.event_index << '/'
       << b.stream_size << " (" << b.event << "), waiting on "
       << rank_list(b.waiting_on);
  }
  if (!cycle.empty()) {
    os << "\n  dependency cycle: ";
    for (const Rank r : cycle) os << "rank " << r << " -> ";
    os << "rank " << cycle.front();
  } else {
    os << "\n  starvation: a blocked rank waits on a rank that already "
          "finished";
  }
  return os.str();
}

DeadlockInfo analyze_deadlock(const Trace& trace, Bytes eager_threshold) {
  PALS_CHECK_MSG(trace.n_ranks() > 0, "deadlock analysis of an empty trace");
  return AbstractMachine(trace, eager_threshold).run();
}

}  // namespace lint
}  // namespace pals
