// Static trace verifier (pals::lint).
//
// Analyzes a logical Trace *before* replay and reports everything wrong
// with it at once, instead of the first-error throw of Trace::validate()
// or a mid-replay deadlock. Four analysis passes:
//
//  1. Point-to-point match graph: sends and recvs are paired per ordered
//     (src, dst, tag) channel in program order (MPI's non-overtaking
//     rule), so the k-th send matches the k-th recv. Extra operations on
//     either side are unmatched; matched pairs with different payload
//     sizes are flagged.
//  2. Collective participation: every rank must issue the same sequence
//     of (op, root) collectives; divergence is reported per rank and
//     per position.
//  3. Per-rank discipline and data hygiene: request open/wait pairing,
//     non-finite/negative/zero/huge burst durations, marker balance,
//     empty iterations, empty ranks.
//  4. Deadlock analysis: a timeless abstract replay with the same
//     matching semantics as replay/replay.hpp (eager sends never block,
//     rendezvous sends block until the recv posts, collectives
//     synchronize). If the machine wedges, the blocked-rank wait-for
//     graph is searched for a cycle, which is reported with per-rank
//     event indices — a proof of the deadlock rather than a symptom.
//
// Pass 4 runs only when passes 1-3 found no structural errors that would
// make the abstract machine meaningless (unknown peers, broken request
// discipline).
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "network/platform.hpp"
#include "trace/trace.hpp"

namespace pals {
namespace lint {

struct LintOptions {
  /// Messages <= this use the eager protocol and never block the sender;
  /// must match the replay platform for exact deadlock equivalence.
  Bytes eager_threshold = PlatformModel{}.eager_threshold;
  /// Keep at most this many diagnostics (0 = all); totals in the report
  /// still count everything.
  std::size_t max_diagnostics = 0;
  /// Compute bursts longer than this (seconds at reference frequency)
  /// draw a huge-duration warning.
  Seconds huge_duration = 1e6;
  /// Run the abstract-replay deadlock analysis (pass 4).
  bool deadlock = true;
};

/// Run all passes over `trace`. Never throws on trace content; the trace
/// does not need to pass Trace::validate() first.
LintReport lint_trace(const Trace& trace, const LintOptions& options = {});

/// Throw pals::Error carrying the full lint report when `trace` has any
/// error-severity finding. `context` names the trace in the message
/// (workload name, grid cell, file path).
void enforce_lint(const Trace& trace, const LintOptions& options,
                  const std::string& context);

/// One collective slot of the static collective program. Slot k is the
/// k-th collective every rank issues (replay synchronizes per slot); the
/// op comes from rank 0's program and `max_bytes` is the largest per-rank
/// contribution at that slot — exactly the inputs replay feeds to
/// `collective_cost`.
struct CollectiveSlot {
  CollectiveOp op = CollectiveOp::kBarrier;
  Bytes max_bytes = 0;
};

/// Static communication-volume summary derived from the same p2p match
/// graph and collective program the linter checks. `pals::bounds` budgets
/// its serialization upper bound (every message fully serialized) and its
/// critical-path lower bound (every rank pays every collective slot) from
/// these totals without running a replay.
struct CommVolume {
  /// Point-to-point messages: every posted send/isend whose peer is a
  /// valid foreign rank (mirrors replay's point_to_point_messages).
  std::size_t messages = 0;
  /// Total payload bytes over those messages.
  Bytes total_bytes = 0;
  /// Collective program, one entry per slot all ranks reach. Slots some
  /// rank never issues are dropped (replay would wedge there anyway).
  std::vector<CollectiveSlot> collectives;
};

/// Extract the communication volume of `trace`. Never throws on trace
/// content; malformed programs simply contribute what statically matches.
CommVolume comm_volume(const Trace& trace);

/// One blocked rank of a wedged abstract replay.
struct BlockedRank {
  Rank rank = -1;
  std::size_t event_index = 0;     ///< index of the event it is stuck on
  std::size_t stream_size = 0;
  std::string event;               ///< to_string() of the blocking event
  std::vector<Rank> waiting_on;    ///< ranks that must act to unblock it
};

/// Result of the abstract-replay deadlock analysis.
struct DeadlockInfo {
  bool deadlocked = false;
  std::vector<BlockedRank> blocked;  ///< sorted by rank
  /// A wait-for cycle among the blocked ranks: cycle[i] waits on
  /// cycle[i+1], and cycle.back() waits on cycle.front(). Empty when the
  /// deadlock is starvation (a blocked rank waits on a finished one).
  std::vector<Rank> cycle;

  /// Multi-line diagnosis: one "rank R stuck at event i/n (event)" line
  /// per blocked rank plus the dependency-cycle (or starvation) line.
  /// Every line starts with "\n  "; empty string when not deadlocked.
  std::string describe() const;
};

/// Run only the abstract replay. The trace must be structurally sound
/// (i.e. pass Trace::validate(), or lint with no pass-1/3 errors);
/// replay/replay.cpp calls this to turn its deadlock throw into a cycle
/// diagnosis.
DeadlockInfo analyze_deadlock(const Trace& trace, Bytes eager_threshold);

}  // namespace lint
}  // namespace pals
