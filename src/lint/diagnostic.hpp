// Structured diagnostics produced by the static trace verifier.
//
// Unlike Trace::validate(), which throws on the first violated invariant,
// the linter records every finding as a Diagnostic and keeps going, so one
// run reports the complete damage of a malformed trace. Diagnostics carry
// a stable machine-readable code (kebab-case in text output) plus the
// rank/event coordinates the finding anchors to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/types.hpp"

namespace pals {
namespace lint {

enum class Severity {
  kInfo,     ///< stylistic or merely unusual; never fails a lint run
  kWarning,  ///< suspicious data; fails only under --strict
  kError,    ///< the trace is wrong: replay would misbehave or throw
};

std::string to_string(Severity severity);

/// Stable diagnostic codes; to_string() yields the kebab-case identifier
/// used in text/CSV output and documented in docs/lint.md.
enum class Code {
  // Point-to-point match graph.
  kUnmatchedSend,         ///< send/isend with no matching recv on the peer
  kUnmatchedRecv,         ///< recv/irecv with no matching send on the peer
  kBytesMismatch,         ///< matched pair disagrees on payload size
  kPeerOutOfRange,        ///< p2p peer is not a rank of this trace
  kSelfMessage,           ///< p2p event targets its own rank
  // Collective participation.
  kCollectiveCountMismatch,  ///< rank issues more/fewer collectives than rank 0
  kCollectiveKindMismatch,   ///< k-th collective op differs from rank 0's
  kCollectiveRootMismatch,   ///< k-th collective root differs from rank 0's
  kCollectiveRootOutOfRange, ///< root is not a rank of this trace
  // Request discipline.
  kRequestAlreadyOpen,   ///< isend/irecv reuses a request id still open
  kWaitUnknownRequest,   ///< wait on a request never posted (or already waited)
  kRequestNeverWaited,   ///< request still open when the rank's stream ends
  kWaitAllNoPending,     ///< waitall with no open requests (no-op)
  // Suspicious data.
  kNonFiniteDuration,    ///< NaN/inf compute duration
  kNegativeDuration,     ///< negative compute duration
  kZeroDuration,         ///< zero-length compute burst
  kHugeDuration,         ///< burst longer than LintOptions::huge_duration
  kEmptyIteration,       ///< iteration markers with nothing between them
  kUnbalancedMarkers,    ///< begin/end markers do not pair up
  kEmptyRank,            ///< rank with an empty event stream
  kEmptyTrace,           ///< trace with zero ranks
  // Cross-rank dependency analysis.
  kDeadlock,             ///< blocked dependency cycle (or starved rank)
  // Bounds soundness oracle (pals::bounds, docs/bounds.md).
  kBoundViolationTime,   ///< replayed makespan escaped the static interval
  kBoundViolationEnergy, ///< replayed energy escaped the static interval
};

std::string to_string(Code code);
Severity severity_of(Code code);

/// One finding. rank/event_index are -1 for trace-level diagnostics.
struct Diagnostic {
  Severity severity = Severity::kError;
  Rank rank = -1;
  std::int64_t event_index = -1;
  Code code = Code::kEmptyTrace;
  std::string message;

  /// "error[unmatched-send] rank 1 event 4: <message>".
  std::string to_text() const;

  bool operator==(const Diagnostic&) const = default;
};

/// The linter's output: diagnostics in canonical order (per-rank findings
/// sorted by rank then event index, trace-level findings last) plus
/// severity totals counted before any max-diagnostics truncation.
struct LintReport {
  std::vector<Diagnostic> diagnostics;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  /// Diagnostics dropped by LintOptions::max_diagnostics.
  std::size_t dropped = 0;

  bool clean() const { return errors + warnings + infos == 0; }
  bool has_errors() const { return errors > 0; }

  /// "3 errors, 1 warning, 0 infos" (plus a dropped note when truncated).
  std::string summary() const;
};

/// One line per diagnostic followed by the summary line.
std::string to_text(const LintReport& report);

/// RFC-4180 CSV with header "severity,code,rank,event,message".
std::string to_csv(const LintReport& report);

/// Deterministic single-line JSON:
/// {"summary":{"errors":N,...},"diagnostics":[{...},...]} so CI can gate
/// on errors-only without parsing the text renderer.
std::string to_json(const LintReport& report);

}  // namespace lint
}  // namespace pals
