#include "lint/diagnostic.hpp"

#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace pals {
namespace lint {

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  throw Error("invalid Severity enum value");
}

std::string to_string(Code code) {
  switch (code) {
    case Code::kUnmatchedSend: return "unmatched-send";
    case Code::kUnmatchedRecv: return "unmatched-recv";
    case Code::kBytesMismatch: return "bytes-mismatch";
    case Code::kPeerOutOfRange: return "peer-out-of-range";
    case Code::kSelfMessage: return "self-message";
    case Code::kCollectiveCountMismatch: return "collective-count-mismatch";
    case Code::kCollectiveKindMismatch: return "collective-kind-mismatch";
    case Code::kCollectiveRootMismatch: return "collective-root-mismatch";
    case Code::kCollectiveRootOutOfRange: return "collective-root-out-of-range";
    case Code::kRequestAlreadyOpen: return "request-already-open";
    case Code::kWaitUnknownRequest: return "wait-unknown-request";
    case Code::kRequestNeverWaited: return "request-never-waited";
    case Code::kWaitAllNoPending: return "waitall-no-pending";
    case Code::kNonFiniteDuration: return "non-finite-duration";
    case Code::kNegativeDuration: return "negative-duration";
    case Code::kZeroDuration: return "zero-duration";
    case Code::kHugeDuration: return "huge-duration";
    case Code::kEmptyIteration: return "empty-iteration";
    case Code::kUnbalancedMarkers: return "unbalanced-markers";
    case Code::kEmptyRank: return "empty-rank";
    case Code::kEmptyTrace: return "empty-trace";
    case Code::kDeadlock: return "deadlock";
    case Code::kBoundViolationTime: return "bound-violation-time";
    case Code::kBoundViolationEnergy: return "bound-violation-energy";
  }
  throw Error("invalid lint Code enum value");
}

Severity severity_of(Code code) {
  switch (code) {
    case Code::kUnmatchedSend:
    case Code::kUnmatchedRecv:
    case Code::kPeerOutOfRange:
    case Code::kSelfMessage:
    case Code::kCollectiveCountMismatch:
    case Code::kCollectiveKindMismatch:
    case Code::kCollectiveRootMismatch:
    case Code::kCollectiveRootOutOfRange:
    case Code::kRequestAlreadyOpen:
    case Code::kWaitUnknownRequest:
    case Code::kRequestNeverWaited:
    case Code::kNonFiniteDuration:
    case Code::kNegativeDuration:
    case Code::kEmptyTrace:
    case Code::kDeadlock:
    case Code::kBoundViolationTime:
    case Code::kBoundViolationEnergy:
      return Severity::kError;
    case Code::kBytesMismatch:
    case Code::kWaitAllNoPending:
    case Code::kHugeDuration:
    case Code::kEmptyIteration:
    case Code::kUnbalancedMarkers:
    case Code::kEmptyRank:
      return Severity::kWarning;
    case Code::kZeroDuration:
      return Severity::kInfo;
  }
  throw Error("invalid lint Code enum value");
}

std::string Diagnostic::to_text() const {
  std::ostringstream os;
  os << to_string(severity) << '[' << to_string(code) << ']';
  if (rank >= 0) {
    os << " rank " << rank;
    if (event_index >= 0) os << " event " << event_index;
  }
  os << ": " << message;
  return os.str();
}

std::string LintReport::summary() const {
  std::ostringstream os;
  os << errors << (errors == 1 ? " error, " : " errors, ") << warnings
     << (warnings == 1 ? " warning, " : " warnings, ") << infos
     << (infos == 1 ? " info" : " infos");
  if (dropped > 0) os << " (" << dropped << " diagnostics not shown)";
  return os.str();
}

std::string to_text(const LintReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += d.to_text();
    out += '\n';
  }
  out += report.summary();
  out += '\n';
  return out;
}

std::string to_csv(const LintReport& report) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"severity", "code", "rank", "event", "message"});
  for (const Diagnostic& d : report.diagnostics) {
    csv.field(to_string(d.severity))
        .field(to_string(d.code))
        .field(static_cast<long long>(d.rank))
        .field(static_cast<long long>(d.event_index))
        .field(d.message);
    csv.end_row();
  }
  return os.str();
}

std::string to_json(const LintReport& report) {
  std::ostringstream os;
  os << "{\"summary\":{\"errors\":" << report.errors
     << ",\"warnings\":" << report.warnings << ",\"infos\":" << report.infos
     << ",\"dropped\":" << report.dropped << "},\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) os << ',';
    os << "{\"severity\":\"" << to_string(d.severity) << "\",\"code\":\""
       << to_string(d.code) << "\",\"rank\":" << d.rank
       << ",\"event\":" << d.event_index << ",\"message\":\""
       << json_escape(d.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace lint
}  // namespace pals
