// Paraver → logical trace translation (the paper's "Paraver traces were
// translated to Dimemas trace files" step).
//
// Reconstruction rules:
//  * Running state intervals become computation bursts.
//  * Comm records become a non-blocking send on the source (positioned at
//    the logical send time) and a blocking receive on the destination
//    (positioned at the delivery time). Sender-side blocking semantics
//    are not recoverable from .prv and are re-derived by the replay
//    simulator's eager/rendezvous protocol.
//  * Collective enter events (type 50000002, value > 0) become collective
//    operations with bytes/root taken from the accompanying payload
//    events; a waitall is inserted before every collective and at the end
//    of each rank so outstanding sends complete.
//  * Iteration events (type 60000001) become iteration markers.
//
// The translation is behaviour-preserving rather than bit-faithful:
// adjacent bursts merged in the timeline stay merged, and operation order
// within a rank follows record timestamps. Translated traces always
// validate and are deadlock-free for records produced by a consistent
// execution (delivery never precedes posting).
#pragma once

#include "paraver/prv.hpp"
#include "trace/trace.hpp"

namespace pals {

Trace translate_prv(const PrvTrace& prv);

}  // namespace pals
