#include "paraver/export.hpp"

#include "util/error.hpp"

namespace pals {
namespace {

PrvState to_prv_state(RankState state) {
  switch (state) {
    case RankState::kCompute: return PrvState::kRunning;
    case RankState::kSend: return PrvState::kBlockedSend;
    case RankState::kRecv:
    case RankState::kWait: return PrvState::kWaitingMessage;
    case RankState::kCollective: return PrvState::kGroupCommunication;
    case RankState::kIdle: return PrvState::kIdle;
  }
  throw Error("invalid RankState");
}

}  // namespace

PrvTrace export_prv(const ReplayResult& result) {
  PrvTrace prv;
  prv.total_time = result.makespan;
  prv.n_tasks = result.timeline.n_ranks();

  for (Rank r = 0; r < prv.n_tasks; ++r) {
    std::int32_t current_iteration = -1;
    Seconds lane_end = 0.0;
    for (const StateInterval& iv : result.timeline.intervals(r)) {
      prv.states.push_back(
          PrvStateRecord{r, iv.begin, iv.end, to_prv_state(iv.state)});
      if (iv.iteration != current_iteration) {
        if (current_iteration >= 0)
          prv.events.push_back(
              PrvEventRecord{r, iv.begin, kPrvEventIteration, 0});
        if (iv.iteration >= 0)
          prv.events.push_back(PrvEventRecord{
              r, iv.begin, kPrvEventIteration, iv.iteration + 1});
        current_iteration = iv.iteration;
      }
      lane_end = iv.end;
    }
    // Close the final iteration if the lane ends inside one (ranks padded
    // with idle already closed it at the idle transition).
    if (current_iteration >= 0)
      prv.events.push_back(
          PrvEventRecord{r, lane_end, kPrvEventIteration, 0});
  }

  for (const MessageRecord& m : result.messages) {
    prv.comms.push_back(PrvCommRecord{m.src, m.dst, m.send_time, m.recv_time,
                                      m.bytes, m.tag});
  }

  for (const CollectiveRecord& c : result.collectives) {
    for (const auto& [rank, arrival] : c.arrivals) {
      prv.events.push_back(PrvEventRecord{
          rank, arrival, kPrvEventCollectiveOp,
          static_cast<std::int64_t>(c.op) + 1});
      prv.events.push_back(PrvEventRecord{
          rank, arrival, kPrvEventCollectiveBytes,
          static_cast<std::int64_t>(c.bytes)});
      prv.events.push_back(
          PrvEventRecord{rank, arrival, kPrvEventCollectiveRoot, c.root});
      prv.events.push_back(
          PrvEventRecord{rank, c.completion, kPrvEventCollectiveOp, 0});
    }
  }

  prv.validate();
  return prv;
}

}  // namespace pals
