// Paraver-style trace records and .prv text serialization.
//
// The paper's tooling is Paraver-centric: applications are traced into
// Paraver files, cut to one iterative region, translated to Dimemas
// traces, and the re-timed result is visualized in Paraver again. This
// module implements a simplified but structurally faithful subset of the
// .prv format so executions simulated here can be exchanged with
// Paraver-ecosystem tooling and re-imported as logical traces.
//
// Record grammar (times in integer nanoseconds, tasks 1-based, the
// cpu/appl/thread fields are fixed to task/1/1):
//
//   #Paraver (pals):<total_ns>:<ntasks>
//   1:<cpu>:1:<task>:1:<begin>:<end>:<state>
//   2:<cpu>:1:<task>:1:<time>:<type>:<value>
//   3:<cpu>:1:<stask>:1:<lsend>:<psend>:<cpu>:1:<rtask>:1:<lrecv>:<precv>:<size>:<tag>
//
// States: 0 idle, 1 running, 3 waiting a message (recv/wait), 4 blocked
// send, 9 group communication. Event types: 50000002 collective op id
// (value = CollectiveOp + 1, 0 = leave), 50100001 collective per-rank
// bytes, 50100002 collective root, 60000001 iteration (value = iteration
// + 1, 0 = leave).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/types.hpp"

namespace pals {

/// Paraver state identifiers used by this subset.
enum class PrvState : std::int32_t {
  kIdle = 0,
  kRunning = 1,
  kWaitingMessage = 3,
  kBlockedSend = 4,
  kGroupCommunication = 9,
};

inline constexpr std::int64_t kPrvEventCollectiveOp = 50000002;
inline constexpr std::int64_t kPrvEventCollectiveBytes = 50100001;
inline constexpr std::int64_t kPrvEventCollectiveRoot = 50100002;
inline constexpr std::int64_t kPrvEventIteration = 60000001;

struct PrvStateRecord {
  Rank task = 0;  ///< 0-based internally; serialized 1-based
  Seconds begin = 0.0;
  Seconds end = 0.0;
  PrvState state = PrvState::kIdle;

  bool operator==(const PrvStateRecord&) const = default;
};

struct PrvEventRecord {
  Rank task = 0;
  Seconds time = 0.0;
  std::int64_t type = 0;
  std::int64_t value = 0;

  bool operator==(const PrvEventRecord&) const = default;
};

struct PrvCommRecord {
  Rank src = 0;
  Rank dst = 0;
  Seconds send_time = 0.0;
  Seconds recv_time = 0.0;
  Bytes bytes = 0;
  std::int32_t tag = 0;

  bool operator==(const PrvCommRecord&) const = default;
};

/// A parsed/constructed Paraver trace. Records are kept in serialization
/// order (states and events sorted per task by time).
struct PrvTrace {
  Seconds total_time = 0.0;
  Rank n_tasks = 0;
  std::vector<PrvStateRecord> states;
  std::vector<PrvEventRecord> events;
  std::vector<PrvCommRecord> comms;

  /// Throws pals::Error if tasks/time stamps are out of range.
  void validate() const;

  bool operator==(const PrvTrace&) const = default;
};

void write_prv(const PrvTrace& trace, std::ostream& out);
void write_prv_file(const PrvTrace& trace, const std::string& path);

PrvTrace read_prv(std::istream& in);
PrvTrace read_prv_file(const std::string& path);

}  // namespace pals
