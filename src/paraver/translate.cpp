#include "paraver/translate.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "util/error.hpp"

namespace pals {
namespace {

/// A reconstructed operation with its position in the rank's record
/// stream. `priority` breaks timestamp ties: instantaneous records at
/// time t (markers, message posts/deliveries, collective entries) happen
/// *before* a state interval that begins at t — a receive delivered at t
/// precedes the computation burst it unblocks.
struct Op {
  Seconds time = 0.0;
  int priority = 0;
  Event event;
};

// Communication completed exactly at an iteration transition belongs to
// the ending iteration, so message ops sort before markers; computation
// starting at the transition belongs to the new one, so bursts sort last.
// (Attribution of an op whose timestamp collides with a boundary is
// heuristic — .prv stores times, not program order — but consistent.)
constexpr int kPriorityRecv = 0;
constexpr int kPrioritySend = 1;
constexpr int kPriorityCollective = 2;
constexpr int kPriorityIterEnd = 3;
constexpr int kPriorityIterBegin = 4;
constexpr int kPriorityCompute = 5;

}  // namespace

Trace translate_prv(const PrvTrace& prv) {
  prv.validate();
  Trace trace(prv.n_tasks);

  std::vector<std::vector<Op>> ops(static_cast<std::size_t>(prv.n_tasks));

  for (const PrvStateRecord& s : prv.states) {
    if (s.state != PrvState::kRunning) continue;
    ops[static_cast<std::size_t>(s.task)].push_back(
        Op{s.begin, kPriorityCompute, ComputeEvent{s.end - s.begin, -1}});
  }

  for (const PrvCommRecord& c : prv.comms) {
    // Request ids are assigned after sorting (they must follow stream
    // order); use a placeholder here.
    ops[static_cast<std::size_t>(c.src)].push_back(
        Op{c.send_time, kPrioritySend,
           IsendEvent{c.dst, c.tag, c.bytes, /*request=*/-1}});
    ops[static_cast<std::size_t>(c.dst)].push_back(
        Op{c.recv_time, kPriorityRecv, RecvEvent{c.src, c.tag, c.bytes}});
  }

  // Collective payload events: bytes/root looked up by (task, time).
  std::map<std::pair<Rank, std::int64_t>, Bytes> coll_bytes;
  std::map<std::pair<Rank, std::int64_t>, Rank> coll_root;
  const auto time_key = [](Seconds t) {
    return static_cast<std::int64_t>(t * 1e9 + 0.5);
  };
  for (const PrvEventRecord& e : prv.events) {
    if (e.type == kPrvEventCollectiveBytes)
      coll_bytes[{e.task, time_key(e.time)}] = static_cast<Bytes>(e.value);
    else if (e.type == kPrvEventCollectiveRoot)
      coll_root[{e.task, time_key(e.time)}] = static_cast<Rank>(e.value);
  }
  for (const PrvEventRecord& e : prv.events) {
    if (e.type == kPrvEventCollectiveOp && e.value > 0) {
      CollectiveEvent coll;
      coll.op = static_cast<CollectiveOp>(e.value - 1);
      const auto key = std::make_pair(e.task, time_key(e.time));
      if (const auto it = coll_bytes.find(key); it != coll_bytes.end())
        coll.bytes = it->second;
      if (const auto it = coll_root.find(key); it != coll_root.end())
        coll.root = it->second;
      ops[static_cast<std::size_t>(e.task)].push_back(
          Op{e.time, kPriorityCollective, coll});
    } else if (e.type == kPrvEventIteration) {
      if (e.value > 0) {
        ops[static_cast<std::size_t>(e.task)].push_back(
            Op{e.time, kPriorityIterBegin,
               MarkerEvent{MarkerKind::kIterationBegin,
                           static_cast<std::int32_t>(e.value - 1)}});
      } else {
        ops[static_cast<std::size_t>(e.task)].push_back(
            Op{e.time, kPriorityIterEnd,
               MarkerEvent{MarkerKind::kIterationEnd, -1}});
      }
    }
  }

  for (Rank r = 0; r < prv.n_tasks; ++r) {
    auto& rank_ops = ops[static_cast<std::size_t>(r)];
    std::stable_sort(rank_ops.begin(), rank_ops.end(),
                     [](const Op& a, const Op& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.priority < b.priority;
                     });
    RequestId next_request = 0;
    bool outstanding = false;
    std::int32_t iteration = 0;
    for (Op& op : rank_ops) {
      if (auto* isend = std::get_if<IsendEvent>(&op.event)) {
        isend->request = next_request++;
        outstanding = true;
      } else if (auto* marker = std::get_if<MarkerEvent>(&op.event)) {
        // Renumber iteration ends to match their begins.
        if (marker->kind == MarkerKind::kIterationBegin)
          iteration = marker->id;
        else
          marker->id = iteration;
      } else if (std::holds_alternative<CollectiveEvent>(op.event)) {
        if (outstanding) {
          trace.append(r, WaitAllEvent{});
          outstanding = false;
          next_request = 0;
        }
      }
      trace.append(r, op.event);
    }
    if (outstanding) trace.append(r, WaitAllEvent{});
  }

  trace.validate();
  return trace;
}

}  // namespace pals
