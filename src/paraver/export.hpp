// Export a simulated execution (replay output) as a Paraver trace.
#pragma once

#include "paraver/prv.hpp"
#include "replay/replay.hpp"

namespace pals {

/// Convert a replay result into Paraver records:
///  * every timeline interval becomes a state record,
///  * iteration transitions become type-60000001 events,
///  * point-to-point messages become comm records,
///  * collectives become enter/leave event pairs with op/bytes/root
///    payload events at entry.
PrvTrace export_prv(const ReplayResult& result);

}  // namespace pals
