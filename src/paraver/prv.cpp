#include "paraver/prv.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

std::int64_t to_ns(Seconds t) {
  return static_cast<std::int64_t>(std::llround(t * 1e9));
}

Seconds from_ns(std::int64_t ns) { return static_cast<double>(ns) * 1e-9; }

[[noreturn]] void parse_error(std::size_t line_no, const std::string& line,
                              const std::string& why) {
  std::ostringstream os;
  os << "prv parse error at line " << line_no << " ('" << line
     << "'): " << why;
  throw Error(os.str());
}

PrvState parse_prv_state(long long value) {
  switch (value) {
    case 0: return PrvState::kIdle;
    case 1: return PrvState::kRunning;
    case 3: return PrvState::kWaitingMessage;
    case 4: return PrvState::kBlockedSend;
    case 9: return PrvState::kGroupCommunication;
    default: throw Error("unknown prv state id " + std::to_string(value));
  }
}

}  // namespace

void PrvTrace::validate() const {
  PALS_CHECK_MSG(n_tasks > 0, "prv trace needs at least one task");
  PALS_CHECK_MSG(total_time >= 0.0, "negative total time");
  const auto check_task = [&](Rank task) {
    PALS_CHECK_MSG(task >= 0 && task < n_tasks,
                   "prv task " << task << " out of range");
  };
  for (const PrvStateRecord& s : states) {
    check_task(s.task);
    PALS_CHECK_MSG(s.end >= s.begin, "prv state record ends before begin");
  }
  for (const PrvEventRecord& e : events) check_task(e.task);
  for (const PrvCommRecord& c : comms) {
    check_task(c.src);
    check_task(c.dst);
    PALS_CHECK_MSG(c.recv_time >= c.send_time - 1e-12,
                   "prv comm delivered before it was sent");
  }
}

void write_prv(const PrvTrace& trace, std::ostream& out) {
  trace.validate();
  out << "#Paraver (pals):" << to_ns(trace.total_time) << ':'
      << trace.n_tasks << '\n';
  for (const PrvStateRecord& s : trace.states) {
    const Rank task = s.task + 1;
    out << "1:" << task << ":1:" << task << ":1:" << to_ns(s.begin) << ':'
        << to_ns(s.end) << ':' << static_cast<std::int32_t>(s.state) << '\n';
  }
  for (const PrvEventRecord& e : trace.events) {
    const Rank task = e.task + 1;
    out << "2:" << task << ":1:" << task << ":1:" << to_ns(e.time) << ':'
        << e.type << ':' << e.value << '\n';
  }
  for (const PrvCommRecord& c : trace.comms) {
    const Rank src = c.src + 1;
    const Rank dst = c.dst + 1;
    out << "3:" << src << ":1:" << src << ":1:" << to_ns(c.send_time) << ':'
        << to_ns(c.send_time) << ':' << dst << ":1:" << dst << ":1:"
        << to_ns(c.recv_time) << ':' << to_ns(c.recv_time) << ':' << c.bytes
        << ':' << c.tag << '\n';
  }
}

void write_prv_file(const PrvTrace& trace, const std::string& path) {
  std::ostringstream out;
  write_prv(trace, out);
  atomic_write_file(path, out.str());
}

PrvTrace read_prv(std::istream& in) {
  PrvTrace trace;
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (!header_seen) {
      if (!starts_with(trimmed, "#Paraver"))
        parse_error(line_no, line, "expected #Paraver header");
      const auto fields = split(trimmed, ':');
      if (fields.size() < 3) parse_error(line_no, line, "short header");
      trace.total_time = from_ns(parse_int(fields[fields.size() - 2]));
      trace.n_tasks = static_cast<Rank>(parse_int(fields.back()));
      header_seen = true;
      continue;
    }
    if (trimmed.front() == '#') continue;
    const auto f = split(trimmed, ':');
    try {
      if (f[0] == "1") {
        if (f.size() != 8) parse_error(line_no, line, "state needs 8 fields");
        PrvStateRecord s;
        s.task = static_cast<Rank>(parse_int(f[3]) - 1);
        s.begin = from_ns(parse_int(f[5]));
        s.end = from_ns(parse_int(f[6]));
        s.state = parse_prv_state(parse_int(f[7]));
        trace.states.push_back(s);
      } else if (f[0] == "2") {
        if (f.size() != 8) parse_error(line_no, line, "event needs 8 fields");
        PrvEventRecord e;
        e.task = static_cast<Rank>(parse_int(f[3]) - 1);
        e.time = from_ns(parse_int(f[5]));
        e.type = parse_int(f[6]);
        e.value = parse_int(f[7]);
        trace.events.push_back(e);
      } else if (f[0] == "3") {
        if (f.size() != 15) parse_error(line_no, line, "comm needs 15 fields");
        PrvCommRecord c;
        c.src = static_cast<Rank>(parse_int(f[3]) - 1);
        c.send_time = from_ns(parse_int(f[5]));  // logical send
        c.dst = static_cast<Rank>(parse_int(f[9]) - 1);
        c.recv_time = from_ns(parse_int(f[11]));  // logical receive
        c.bytes = static_cast<Bytes>(parse_int(f[13]));
        c.tag = static_cast<std::int32_t>(parse_int(f[14]));
        trace.comms.push_back(c);
      } else {
        parse_error(line_no, line, "unknown record kind '" + f[0] + "'");
      }
    } catch (const Error& err) {
      if (std::string(err.what()).find("prv parse error") == 0) throw;
      parse_error(line_no, line, err.what());
    }
  }
  if (!header_seen) throw Error("prv parse error: missing header");
  trace.validate();
  return trace;
}

PrvTrace read_prv_file(const std::string& path) {
  std::ifstream in(path);
  PALS_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  return read_prv(in);
}

}  // namespace pals
