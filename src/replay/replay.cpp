#include "replay/replay.hpp"

#include <deque>
#include <map>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "lint/lint.hpp"
#include "obs/metrics.hpp"
#include "simcore/engine.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace pals {
namespace {

/// Identifies a point-to-point matching queue. MPI ordering (non-overtaking
/// per sender/receiver/tag triple) is preserved by FIFO deques per key.
struct ChannelKey {
  Rank src;
  Rank dst;
  std::int32_t tag;

  bool operator<(const ChannelKey& o) const {
    if (src != o.src) return src < o.src;
    if (dst != o.dst) return dst < o.dst;
    return tag < o.tag;
  }
};

struct PendingSend {
  Seconds post_time = 0.0;
  Bytes bytes = 0;
  bool eager = false;
  bool blocking = false;
  RequestId request = -1;   ///< valid when !blocking
  Seconds arrival = 0.0;    ///< valid when eager (computed at post time)
  Seconds jitter = 0.0;     ///< injected latency (sender-side, fault plan)
};

struct PendingRecv {
  Seconds post_time = 0.0;
  bool blocking = false;
  RequestId request = -1;   ///< valid when !blocking
};

/// Why a rank is currently not runnable.
enum class BlockReason { kNone, kSend, kRecv, kWait, kWaitAll, kCollective };

struct CollectiveState {
  CollectiveOp op = CollectiveOp::kBarrier;
  Bytes max_bytes = 0;
  Rank root = 0;
  Seconds completion = 0.0;
  std::vector<std::pair<Rank, Seconds>> arrivals;
};

class ReplayEngine {
public:
  ReplayEngine(const Trace& trace, const ReplayConfig& config)
      : trace_(trace),
        config_(config),
        n_(trace.n_ranks()),
        bus_(config.platform.buses),
        timeline_(trace.n_ranks()),
        ranks_(static_cast<std::size_t>(trace.n_ranks())) {
    engine_.set_event_limit(config.max_simulated_events);
    engine_.set_wall_limit(config.max_wall_seconds);
    for (Rank r = 0; r < n_; ++r) ctx(r).stream = trace.events(r);
    out_links_.reserve(static_cast<std::size_t>(n_));
    in_links_.reserve(static_cast<std::size_t>(n_));
    for (Rank r = 0; r < n_; ++r) {
      out_links_.emplace_back(config.platform.links_per_node);
      in_links_.emplace_back(config.platform.links_per_node);
    }
  }

  ReplayResult run() {
    for (Rank r = 0; r < n_; ++r) {
      engine_.schedule_at(0.0, [this, r] { advance(r); });
    }
    engine_.run();
    check_completion();

    timeline_.pad_to_makespan();
    timeline_.merge_adjacent();
    timeline_.validate();

    ReplayResult result;
    result.makespan = timeline_.makespan();
    result.compute_time.reserve(static_cast<std::size_t>(n_));
    result.communication_time.reserve(static_cast<std::size_t>(n_));
    for (Rank r = 0; r < n_; ++r) {
      result.compute_time.push_back(timeline_.compute_time(r));
      // Idle tail counts as communication-state time for power purposes,
      // but we report it inside communication_time consistently with the
      // paper ("waiting for the other processes").
      result.communication_time.push_back(timeline_.communication_time(r));
    }
    result.point_to_point_messages = p2p_messages_;
    result.point_to_point_bytes = p2p_bytes_;
    result.eager_messages = eager_messages_;
    result.rendezvous_messages = rendezvous_messages_;
    result.collective_operations = collectives_.size();
    result.bus_contention_delay = bus_.contention_delay();
    for (const BusAllocator& link : out_links_)
      result.link_contention_delay += link.contention_delay();
    for (const BusAllocator& link : in_links_)
      result.link_contention_delay += link.contention_delay();
    result.simulated_events = engine_.executed_events();
    result.sim_queue_peak = engine_.max_queue_depth();
    result.fault_compute_perturbations = fault_compute_;
    result.fault_transfer_perturbations = fault_transfer_;
    result.fault_jitter_injections = fault_jitter_;
    result.timeline = std::move(timeline_);
    result.messages = std::move(messages_);
    result.collectives.reserve(collectives_.size());
    for (const CollectiveState& state : collectives_) {
      result.collectives.push_back(CollectiveRecord{
          state.op, state.max_bytes, state.root, state.completion,
          state.arrivals});
    }
    return result;
  }

private:
  struct RankCtx {
    std::span<const Event> stream;
    std::size_t cursor = 0;
    Seconds now = 0.0;
    bool finished = false;

    BlockReason block_reason = BlockReason::kNone;
    Seconds block_start = 0.0;
    RequestId waiting_request = -1;  ///< valid when blocked in kWait

    std::unordered_map<RequestId, Seconds> completion;  ///< completed reqs
    std::unordered_set<RequestId> open;  ///< posted, completion unknown
    Seconds waitall_latest = 0.0;        ///< max completion while in WaitAll
    std::size_t collective_index = 0;
    std::int32_t current_iteration = -1;
    std::uint64_t p2p_posted = 0;  ///< sends posted so far (jitter index)
  };

  RankCtx& ctx(Rank r) { return ranks_[static_cast<std::size_t>(r)]; }

  /// Advance rank `r` until it blocks, finishes, or crosses simulated time.
  void advance(Rank r) {
    RankCtx& c = ctx(r);
    while (c.cursor < c.stream.size()) {
      // Keep global event ordering: never process an event that lies in the
      // future relative to the DES clock.
      if (c.now > engine_.now()) {
        engine_.schedule_at(c.now, [this, r] { advance(r); });
        return;
      }
      const Event& e = c.stream[c.cursor];
      bool blocked = false;
      std::visit(
          [&](const auto& ev) { blocked = !handle(r, ev); }, e);
      if (blocked) return;  // handler stored block state; match resumes us
      ++c.cursor;
    }
    c.finished = true;
  }

  // Each handler returns true if the rank may proceed to the next event
  // (c.now updated), false if the rank blocked.

  bool handle(Rank r, const ComputeEvent& e) {
    RankCtx& c = ctx(r);
    Seconds duration =
        config_.relative_speed.empty()
            ? e.duration
            : e.duration / config_.relative_speed[static_cast<std::size_t>(r)];
    if (config_.faults != nullptr) {
      const double factor = config_.faults->compute_factor(r, c.now);
      if (factor != 1.0) {
        duration *= factor;
        ++fault_compute_;
      }
    }
    record(r, c.now, c.now + duration, RankState::kCompute, e.phase);
    c.now += duration;
    return true;
  }

  bool handle(Rank r, const MarkerEvent& e) {
    // Markers cost nothing but label the rank's subsequent intervals with
    // the iteration index (intervals between iter_end and the next
    // iter_begin stay attributed to the ended iteration).
    if (e.kind == MarkerKind::kIterationBegin) ctx(r).current_iteration = e.id;
    return true;
  }

  bool handle(Rank r, const SendEvent& e) {
    return post_send(r, e.peer, e.tag, e.bytes, /*blocking=*/true, -1);
  }

  bool handle(Rank r, const IsendEvent& e) {
    return post_send(r, e.peer, e.tag, e.bytes, /*blocking=*/false, e.request);
  }

  bool handle(Rank r, const RecvEvent& e) {
    return post_recv(r, e.peer, e.tag, e.bytes, /*blocking=*/true, -1);
  }

  bool handle(Rank r, const IrecvEvent& e) {
    return post_recv(r, e.peer, e.tag, e.bytes, /*blocking=*/false, e.request);
  }

  bool handle(Rank r, const WaitEvent& e) {
    RankCtx& c = ctx(r);
    if (const auto it = c.completion.find(e.request);
        it != c.completion.end()) {
      const Seconds t = std::max(c.now, it->second);
      record(r, c.now, t, RankState::kWait, -1);
      c.now = t;
      c.completion.erase(it);
      return true;
    }
    PALS_CHECK_MSG(c.open.count(e.request),
                   "rank " << r << ": wait on unknown request " << e.request);
    c.block_reason = BlockReason::kWait;
    c.block_start = c.now;
    c.waiting_request = e.request;
    return false;
  }

  bool handle(Rank r, const WaitAllEvent&) {
    RankCtx& c = ctx(r);
    Seconds latest = c.now;
    for (const auto& [req, t] : c.completion) latest = std::max(latest, t);
    if (c.open.empty()) {
      record(r, c.now, latest, RankState::kWait, -1);
      c.now = latest;
      c.completion.clear();
      return true;
    }
    c.block_reason = BlockReason::kWaitAll;
    c.block_start = c.now;
    c.waitall_latest = latest;
    return false;
  }

  bool handle(Rank r, const CollectiveEvent& e) {
    RankCtx& c = ctx(r);
    const std::size_t k = c.collective_index;
    if (k >= collectives_.size()) collectives_.resize(k + 1);
    CollectiveState& state = collectives_[k];
    if (state.arrivals.empty()) {
      state.op = e.op;
      state.root = e.root;
    }
    state.max_bytes = std::max(state.max_bytes, e.bytes);
    state.arrivals.emplace_back(r, c.now);

    c.block_reason = BlockReason::kCollective;
    c.block_start = c.now;
    ++c.collective_index;

    if (state.arrivals.size() == static_cast<std::size_t>(n_)) {
      Seconds last_arrival = 0.0;
      for (const auto& [rank, t] : state.arrivals)
        last_arrival = std::max(last_arrival, t);
      const Seconds done =
          last_arrival +
          collective_cost(config_.platform, state.op, n_, state.max_bytes);
      state.completion = done;
      for (const auto& [rank, t] : state.arrivals) resume(rank, done);
    }
    return false;  // even the last arriver resumes through resume()
  }

  bool post_send(Rank r, Rank peer, std::int32_t tag, Bytes bytes,
                 bool blocking, RequestId request) {
    RankCtx& c = ctx(r);
    const bool eager = bytes <= config_.platform.eager_threshold;
    const Seconds latency = config_.platform.latency;
    // Jitter is drawn at post time from the sender's message index so that
    // both rendezvous halves (which match at different times) agree on it.
    const Seconds jitter = send_jitter(r, c.p2p_posted++);
    const ChannelKey key{r, peer, tag};
    ++p2p_messages_;
    p2p_bytes_ += bytes;
    if (eager)
      ++eager_messages_;
    else
      ++rendezvous_messages_;

    auto& recvs = pending_recvs_[key];
    if (eager) {
      // Payload leaves regardless of the receiver.
      const Seconds transfer = perturbed_transfer(r, peer, c.now, bytes);
      const Seconds start = reserve_transfer(r, peer, c.now, transfer);
      const Seconds arrival = start + latency + jitter + transfer;
      messages_.push_back(MessageRecord{r, peer, tag, bytes, c.now, arrival});
      if (!recvs.empty()) {
        const PendingRecv rv = recvs.front();
        recvs.pop_front();
        complete_recv(peer, rv, arrival);
      } else {
        pending_sends_[key].push_back(
            PendingSend{c.now, bytes, true, blocking, request, arrival,
                        jitter});
      }
      const Seconds sender_done = c.now + latency;
      if (blocking) {
        record(r, c.now, sender_done, RankState::kSend, -1);
        c.now = sender_done;
      } else {
        complete_request_local(r, request, sender_done);
      }
      return true;
    }

    // Rendezvous.
    if (!recvs.empty()) {
      const PendingRecv rv = recvs.front();
      recvs.pop_front();
      const Seconds both_posted = std::max(c.now, rv.post_time);
      const Seconds transfer = perturbed_transfer(r, peer, both_posted, bytes);
      const Seconds start =
          reserve_transfer(r, peer, both_posted + latency + jitter, transfer);
      const Seconds end = start + transfer;
      messages_.push_back(MessageRecord{r, peer, tag, bytes, c.now, end});
      complete_recv(peer, rv, end);
      if (blocking) {
        record(r, c.now, end, RankState::kSend, -1);
        c.now = end;
        return true;
      }
      complete_request_local(r, request, end);
      return true;
    }

    pending_sends_[key].push_back(
        PendingSend{c.now, bytes, false, blocking, request, 0.0, jitter});
    if (blocking) {
      c.block_reason = BlockReason::kSend;
      c.block_start = c.now;
      return false;
    }
    PALS_CHECK(c.open.insert(request).second);
    return true;
  }

  bool post_recv(Rank r, Rank peer, std::int32_t tag, Bytes bytes,
                 bool blocking, RequestId request) {
    RankCtx& c = ctx(r);
    const ChannelKey key{peer, r, tag};
    const Seconds latency = config_.platform.latency;

    auto& sends = pending_sends_[key];
    if (!sends.empty()) {
      const PendingSend sd = sends.front();
      sends.pop_front();
      Seconds data_ready = 0.0;
      if (sd.eager) {
        data_ready = sd.arrival;
      } else {
        const Seconds both_posted = std::max(c.now, sd.post_time);
        const Seconds transfer =
            perturbed_transfer(peer, r, both_posted, sd.bytes);
        const Seconds start = reserve_transfer(
            peer, r, both_posted + latency + sd.jitter, transfer);
        data_ready = start + transfer;
        messages_.push_back(MessageRecord{peer, r, tag, sd.bytes,
                                          sd.post_time, data_ready});
        // Release or complete the sender half of the rendezvous.
        if (sd.blocking) {
          resume(peer, data_ready);
        } else {
          complete_request_remote(peer, sd.request, data_ready);
        }
      }
      (void)bytes;  // payload size is taken from the sender record
      const Seconds done = std::max(c.now, data_ready);
      if (blocking) {
        record(r, c.now, done, RankState::kRecv, -1);
        c.now = done;
        return true;
      }
      complete_request_local(r, request, done);
      return true;
    }

    pending_recvs_[key].push_back(PendingRecv{c.now, blocking, request});
    if (blocking) {
      c.block_reason = BlockReason::kRecv;
      c.block_start = c.now;
      return false;
    }
    PALS_CHECK(c.open.insert(request).second);
    return true;
  }

  /// Transfer duration for `bytes` from src to dst, degraded by any active
  /// link faults (a degraded link makes the payload take `factor`x longer).
  Seconds perturbed_transfer(Rank src, Rank dst, Seconds when, Bytes bytes) {
    Seconds transfer = config_.platform.transfer_time(bytes);
    if (config_.faults != nullptr) {
      const double factor = config_.faults->transfer_factor(src, dst, when);
      if (factor != 1.0) {
        transfer *= factor;
        ++fault_transfer_;
      }
    }
    return transfer;
  }

  /// Extra message latency for the sender's `index`-th posted message.
  Seconds send_jitter(Rank r, std::uint64_t index) {
    if (config_.faults == nullptr) return 0.0;
    const Seconds jitter = config_.faults->latency_jitter(r, index);
    if (jitter > 0.0) ++fault_jitter_;
    return jitter;
  }

  /// Reserve the network stages of a transfer (source output link, then
  /// destination input link, then a shared bus) and return its start time.
  Seconds reserve_transfer(Rank src, Rank dst, Seconds earliest,
                           Seconds duration) {
    Seconds start =
        out_links_[static_cast<std::size_t>(src)].reserve(earliest, duration);
    start = in_links_[static_cast<std::size_t>(dst)].reserve(start, duration);
    return bus_.reserve(start, duration);
  }

  /// Complete the receiver side of a matched message at `data_ready`.
  void complete_recv(Rank r, const PendingRecv& rv, Seconds data_ready) {
    if (rv.blocking) {
      resume(r, std::max(rv.post_time, data_ready));
    } else {
      complete_request_remote(r, rv.request, data_ready);
    }
  }

  /// Record a request completion for the rank currently executing (its
  /// event is being handled, so direct map insertion is safe).
  void complete_request_local(Rank r, RequestId request, Seconds t) {
    RankCtx& c = ctx(r);
    c.open.erase(request);
    PALS_CHECK_MSG(c.completion.emplace(request, t).second,
                   "rank " << r << ": request " << request
                           << " completed twice");
  }

  /// Complete a request of a *different* rank, possibly waking it from
  /// Wait/Waitall.
  void complete_request_remote(Rank r, RequestId request, Seconds t) {
    RankCtx& c = ctx(r);
    c.open.erase(request);
    PALS_CHECK_MSG(c.completion.emplace(request, t).second,
                   "rank " << r << ": request " << request
                           << " completed twice");
    if (c.block_reason == BlockReason::kWait && c.waiting_request == request) {
      const Seconds resume_at = std::max(c.block_start, t);
      c.completion.erase(request);
      c.waiting_request = -1;
      resume(r, resume_at);
    } else if (c.block_reason == BlockReason::kWaitAll) {
      c.waitall_latest = std::max(c.waitall_latest, t);
      if (c.open.empty()) {
        c.completion.clear();
        resume(r, std::max(c.block_start, c.waitall_latest));
      }
    }
  }

  /// Wake a blocked rank at time `t`: close its blocked interval, consume
  /// the blocking event and reschedule it.
  void resume(Rank r, Seconds t) {
    RankCtx& c = ctx(r);
    PALS_CHECK_MSG(c.block_reason != BlockReason::kNone,
                   "resume of non-blocked rank " << r);
    const RankState state = [&] {
      switch (c.block_reason) {
        case BlockReason::kSend: return RankState::kSend;
        case BlockReason::kRecv: return RankState::kRecv;
        case BlockReason::kWait:
        case BlockReason::kWaitAll: return RankState::kWait;
        case BlockReason::kCollective: return RankState::kCollective;
        case BlockReason::kNone: break;
      }
      return RankState::kIdle;
    }();
    record(r, c.block_start, t, state, -1);
    c.block_reason = BlockReason::kNone;
    c.now = t;
    ++c.cursor;  // the blocking event is done
    engine_.schedule_at(t, [this, r] { advance(r); });
  }

  void record(Rank r, Seconds begin, Seconds end, RankState state,
              std::int32_t phase) {
    timeline_.append(
        r, StateInterval{begin, end, state, phase, ctx(r).current_iteration});
  }

  void check_completion() const {
    bool deadlock = false;
    for (Rank r = 0; r < n_; ++r)
      if (!ranks_[static_cast<std::size_t>(r)].finished) deadlock = true;
    if (!deadlock) return;
    // Re-derive the blocked state with the static linter's abstract
    // machine: same matching semantics, but it names the wait-for cycle
    // (or starved rank) instead of just listing stuck ranks.
    const lint::DeadlockInfo info =
        lint::analyze_deadlock(trace_, config_.platform.eager_threshold);
    if (info.deadlocked)
      throw Error("replay deadlock: not all ranks completed" +
                  info.describe());
    // The abstract machine should agree with the replay; if it ever does
    // not, fall back to the replay's own view rather than report success.
    std::ostringstream blocked;
    for (Rank r = 0; r < n_; ++r) {
      const RankCtx& c = ranks_[static_cast<std::size_t>(r)];
      if (!c.finished) {
        blocked << "\n  rank " << r << " stuck at event " << c.cursor << "/"
                << c.stream.size();
        if (c.cursor < c.stream.size())
          blocked << " (" << to_string(c.stream[c.cursor]) << ")";
      }
    }
    throw Error("replay deadlock: not all ranks completed" + blocked.str());
  }

  const Trace& trace_;
  ReplayConfig config_;
  Rank n_;
  SimEngine engine_;
  BusAllocator bus_;
  std::vector<BusAllocator> out_links_;
  std::vector<BusAllocator> in_links_;
  Timeline timeline_;
  std::vector<RankCtx> ranks_;

  std::map<ChannelKey, std::deque<PendingSend>> pending_sends_;
  std::map<ChannelKey, std::deque<PendingRecv>> pending_recvs_;
  std::vector<CollectiveState> collectives_;

  std::size_t p2p_messages_ = 0;
  Bytes p2p_bytes_ = 0;
  std::size_t eager_messages_ = 0;
  std::size_t rendezvous_messages_ = 0;
  std::size_t fault_compute_ = 0;
  std::size_t fault_transfer_ = 0;
  std::size_t fault_jitter_ = 0;
  std::vector<MessageRecord> messages_;
};

}  // namespace

void ReplayConfig::validate() const {
  platform.validate();
  for (const double s : relative_speed)
    PALS_CHECK_MSG(s > 0.0, "relative CPU speeds must be positive");
  PALS_CHECK_MSG(max_wall_seconds >= 0.0,
                 "max_wall_seconds must be >= 0 (0 disables the watchdog)");
}

ReplayResult replay(const Trace& trace, const ReplayConfig& config) {
  config.validate();
  trace.validate();
  PALS_CHECK_MSG(config.relative_speed.empty() ||
                     config.relative_speed.size() ==
                         static_cast<std::size_t>(trace.n_ranks()),
                 "relative_speed must be empty or one entry per rank");
  ReplayEngine engine(trace, config);
  ReplayResult result = engine.run();

  // Self-record into the process-global registry. All values are integer
  // counts or integer nanoseconds, so concurrent replays (scenario sweep
  // workers) accumulate commutatively — snapshots stay deterministic.
  obs::Registry& reg = obs::default_registry();
  reg.counter("replay.runs").add(1);
  reg.counter("replay.events").add(result.simulated_events);
  reg.counter("replay.messages_matched").add(result.messages.size());
  reg.counter("replay.messages_eager").add(result.eager_messages);
  reg.counter("replay.messages_rendezvous").add(result.rendezvous_messages);
  reg.counter("replay.p2p_bytes").add(result.point_to_point_bytes);
  reg.counter("replay.collectives").add(result.collective_operations);
  reg.counter("replay.bus_wait_ns")
      .add(static_cast<std::uint64_t>(
          obs::to_nanos(result.bus_contention_delay)));
  reg.counter("replay.link_wait_ns")
      .add(static_cast<std::uint64_t>(
          obs::to_nanos(result.link_contention_delay)));
  reg.gauge("sim.queue_peak")
      .update_max(static_cast<std::int64_t>(result.sim_queue_peak));
  if (config.faults != nullptr) {
    // Only touched under fault injection so fault-free runs keep their
    // exact metric snapshots.
    reg.counter("fault.compute_perturbations")
        .add(result.fault_compute_perturbations);
    reg.counter("fault.transfer_perturbations")
        .add(result.fault_transfer_perturbations);
    reg.counter("fault.jitter_injections")
        .add(result.fault_jitter_injections);
  }
  return result;
}

}  // namespace pals
