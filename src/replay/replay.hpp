// Trace replay — a Dimemas-like MPI simulator.
//
// Replays a logical trace (per-rank computation bursts + MPI operations) on
// a PlatformModel and produces the total execution time plus a per-rank
// state timeline. Semantics:
//
//  * Computation bursts take their trace duration (the power pipeline
//    rescales durations for DVFS before replay).
//  * Point-to-point messages <= eager_threshold use the eager protocol:
//    the sender is busy for `latency`, the payload arrives at
//    bus_start + latency + bytes/bandwidth regardless of the receiver.
//  * Larger messages use rendezvous: the transfer starts only when both
//    sides have posted; a blocking sender stalls until transfer completion.
//  * Non-blocking operations complete in the background; Wait/Waitall block
//    until the referenced transfers finish.
//  * Collectives synchronize: every rank blocks until all have entered,
//    then all leave together after a closed-form cost (network/platform.hpp).
//  * A configurable number of shared buses serializes concurrent transfers.
//
// Deadlocks (e.g. a recv whose send never happens) are detected and
// reported with the blocked ranks plus the wait-for cycle diagnosed by
// the static linter (lint/lint.hpp). Running lint_trace() before replay
// — or setting PipelineConfig::lint — catches them without simulating.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/injector.hpp"
#include "network/platform.hpp"
#include "trace/timeline.hpp"
#include "trace/trace.hpp"

namespace pals {

struct ReplayConfig {
  PlatformModel platform;
  /// Relative CPU speed per rank (Dimemas's CPU-ratio): a compute burst of
  /// duration d on rank r takes d / relative_speed[r]. Empty = homogeneous
  /// machine (all 1.0). Models heterogeneous clusters; DVFS rescaling uses
  /// trace transforms instead (the frequency choice is per-application).
  std::vector<double> relative_speed;

  /// Optional fault injector (not owned; must outlive the replay). When
  /// set, compute bursts, transfer durations and message latencies are
  /// perturbed by pure functions of (plan seed, rank, event index), so
  /// results stay byte-identical across hosts and thread counts.
  const fault::Injector* faults = nullptr;

  /// Abort the simulation with a structured pals::Error once more than
  /// this many DES events have executed (0 = unlimited). The fault-
  /// tolerant sweep classifies the error as a timeout; because the limit
  /// counts simulated work, hitting it is deterministic.
  std::size_t max_simulated_events = 0;

  /// Host-side wall-clock watchdog (0 = disabled): abort the replay with
  /// a structured "wall-clock watchdog expired" error — classified
  /// fault::ErrorClass::kTimeout — once the run has consumed this much
  /// *host* time. The sweep engine threads its --cell-timeout budget
  /// through here so a wedged cell is quarantined instead of hanging the
  /// whole sweep. Unlike max_simulated_events this depends on host speed,
  /// so it must stay off in determinism comparisons.
  double max_wall_seconds = 0.0;

  void validate() const;
};

/// One completed point-to-point message (for Paraver export and traffic
/// analysis).
struct MessageRecord {
  Rank src = 0;
  Rank dst = 0;
  std::int32_t tag = 0;
  Bytes bytes = 0;
  Seconds send_time = 0.0;  ///< when the sender posted the operation
  Seconds recv_time = 0.0;  ///< when the payload was delivered/matched

  bool operator==(const MessageRecord&) const = default;
};

/// One completed collective operation.
struct CollectiveRecord {
  CollectiveOp op = CollectiveOp::kBarrier;
  Bytes bytes = 0;  ///< largest per-rank contribution
  Rank root = 0;
  Seconds completion = 0.0;
  /// Per-rank entry times, in arrival order: {rank, time}.
  std::vector<std::pair<Rank, Seconds>> arrivals;

  bool operator==(const CollectiveRecord&) const = default;
};

struct ReplayResult {
  /// Total simulated execution time (end of the last rank).
  Seconds makespan = 0.0;
  /// Gap-free per-rank state intervals, padded with idle to `makespan`.
  Timeline timeline;

  /// Every matched point-to-point message, in match order.
  std::vector<MessageRecord> messages;
  /// Every collective, in program order.
  std::vector<CollectiveRecord> collectives;

  /// Per-rank aggregates (seconds).
  std::vector<Seconds> compute_time;
  std::vector<Seconds> communication_time;  ///< everything except compute

  /// Traffic statistics.
  std::size_t point_to_point_messages = 0;
  Bytes point_to_point_bytes = 0;
  /// Protocol split of the posted sends (eager + rendezvous =
  /// point_to_point_messages).
  std::size_t eager_messages = 0;
  std::size_t rendezvous_messages = 0;
  std::size_t collective_operations = 0;
  Seconds bus_contention_delay = 0.0;
  /// Time transfers queued for per-node input/output links.
  Seconds link_contention_delay = 0.0;

  std::size_t simulated_events = 0;
  /// Event-queue high-water mark of the DES engine.
  std::size_t sim_queue_peak = 0;

  /// Fault-injection accounting (all 0 when ReplayConfig::faults is null).
  std::size_t fault_compute_perturbations = 0;   ///< slowed compute bursts
  std::size_t fault_transfer_perturbations = 0;  ///< degraded transfers
  std::size_t fault_jitter_injections = 0;       ///< jittered message posts
};

/// Simulate `trace` on the platform. The trace must pass validate().
/// Throws pals::Error on deadlock.
ReplayResult replay(const Trace& trace, const ReplayConfig& config);

}  // namespace pals
