// Parallel scenario-sweep engine.
//
// Every figure/table reproduction is a grid of (workload × gear set ×
// algorithm × β) scenarios, each an independent run_pipeline call — an
// embarrassingly parallel structure the serial drivers leave on the
// table. This layer fans a declarative grid out across a work-stealing
// thread pool (util/thread_pool.hpp) with two guarantees:
//
//  * Determinism: results are merged in canonical grid order into
//    pre-allocated slots, so the output rows — and the CSV rendered from
//    them — are byte-identical regardless of the thread count.
//  * Baseline sharing: the baseline replay of each workload depends only
//    on the trace and the platform, not on the gear point, so it is
//    computed once per workload and reused by every scenario instead of
//    once per (workload, gear, algorithm, β) combination.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "core/algorithms.hpp"

namespace pals {

/// Parse an algorithm name ("max", "avg", "energy-optimal"); throws
/// pals::Error on anything else.
Algorithm algorithm_by_name(const std::string& name);

/// One point of the scenario grid.
struct Scenario {
  /// Registry instance name ("CG-32") or an inline workload spec
  /// "family:ranks:target_lb[:iterations]" (e.g. "lu:32:0.93:6").
  std::string workload;
  /// Gear-set name for gear_set_by_name() ("uniform-6", "avg-discrete",
  /// "continuous-unlimited", ...).
  std::string gear_set = "uniform-6";
  Algorithm algorithm = Algorithm::kMax;
  double beta = 0.5;
  /// Variant label for the result row; empty derives one from the
  /// gear set / algorithm / β.
  std::string label;

  std::string variant_label() const;
};

/// Declarative cross-product grid; expand() yields the canonical scenario
/// order (workload-major, then gear set, algorithm, β).
struct SweepGrid {
  std::vector<std::string> workloads;
  std::vector<std::string> gear_sets;
  std::vector<Algorithm> algorithms = {Algorithm::kMax};
  std::vector<double> betas = {0.5};
  /// Iterations for workloads that do not carry their own count.
  int iterations = 10;

  /// Parse a key = value grid file (util/kvconfig.hpp) with
  /// comma-separated lists:
  ///
  ///   workloads  = CG-32, MG-32, lu:32:0.93:6
  ///   gear_sets  = uniform-6, avg-discrete
  ///   algorithms = max, avg
  ///   betas      = 0.5
  ///   iterations = 10
  static SweepGrid from_file(const std::string& path);

  void validate() const;
  std::vector<Scenario> expand() const;
};

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial.
  int jobs = 1;
  /// Iterations for registry workloads and specs without an explicit
  /// count (SweepGrid::expand carries the grid's value through
  /// run_sweep(grid, ...)).
  int iterations = 10;
  /// Configuration applied to every scenario; the scenario's gear set,
  /// algorithm and β override the corresponding fields. Platform and
  /// power knobs (static fraction, activity ratio, ...) pass through.
  /// Setting base.lint statically verifies every workload trace once,
  /// up front (phase 1), aborting the sweep with a full lint report
  /// instead of a mid-replay deadlock throw.
  PipelineConfig base = default_pipeline_config(paper_uniform(6));
  /// Optional shared trace cache (must outlive the call); run_sweep uses
  /// a private one when null.
  TraceCache* trace_cache = nullptr;
  /// When non-null, a periodic progress line
  /// ("sweep: k/N scenarios, elapsed Xs, ETA Ys") is written to this
  /// stream while the scenario fan-out runs, driven by the
  /// "sweep.scenarios_completed" metrics counter (pals_sweep --progress
  /// points this at stderr). Null (the default) disables progress output.
  std::ostream* progress_stream = nullptr;
  /// Seconds between progress lines.
  double progress_interval_seconds = 1.0;
};

/// Timing/throughput counters of one sweep, for the machine-readable
/// summary (timings are wall-clock and therefore *not* deterministic —
/// only SweepResult::rows is).
struct SweepStats {
  std::size_t scenarios = 0;
  std::size_t workloads = 0;  ///< unique workloads (= baseline replays run)
  int jobs = 1;
  double wall_seconds = 0.0;
  double scenarios_per_second = 0.0;
  std::size_t baseline_cache_misses = 0;  ///< baselines actually computed
  std::size_t baseline_cache_hits = 0;    ///< scenarios served from cache
  double baseline_cache_hit_rate = 0.0;
  double scenario_seconds_total = 0.0;  ///< Σ per-scenario replay time
  double scenario_seconds_max = 0.0;    ///< slowest single scenario

  /// "key = value" lines, parseable by util/kvconfig.hpp.
  std::string to_kv() const;
};

struct SweepResult {
  /// One row per scenario, in canonical grid order.
  std::vector<ExperimentRow> rows;
  /// Wall-clock seconds each scenario's pipeline took (same order).
  std::vector<double> scenario_seconds;
  SweepStats stats;
};

/// Run an explicit scenario list. Scenario errors (unknown workload or
/// gear set) throw pals::Error naming the offending scenario.
SweepResult run_sweep(const std::vector<Scenario>& scenarios,
                      const SweepOptions& options = {});

/// Expand and run a grid (grid.iterations overrides options.iterations).
SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options = {});

}  // namespace pals
