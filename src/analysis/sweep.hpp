// Parallel scenario-sweep engine.
//
// Every figure/table reproduction is a grid of (workload × gear set ×
// algorithm × β) scenarios, each an independent run_pipeline call — an
// embarrassingly parallel structure the serial drivers leave on the
// table. This layer fans a declarative grid out across a work-stealing
// thread pool (util/thread_pool.hpp) with two guarantees:
//
//  * Determinism: results are merged in canonical grid order into
//    pre-allocated slots, so the output rows — and the CSV rendered from
//    them — are byte-identical regardless of the thread count.
//  * Baseline sharing: the baseline replay of each workload depends only
//    on the trace and the platform, not on the gear point, so it is
//    computed once per workload and reused by every scenario instead of
//    once per (workload, gear, algorithm, β) combination.
//
// Fault tolerance (SweepOptions::faults / keep_going / retry): each cell
// runs under fault::run_guarded — transient failures retry with
// deterministic simulated backoff, persistent ones are quarantined into
// SweepResult::errors while the surviving cells still aggregate in
// canonical order. See docs/faults.md.
#pragma once

#include <atomic>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/journal.hpp"
#include "core/algorithms.hpp"
#include "fault/guard.hpp"
#include "fault/injector.hpp"

namespace pals {

/// Parse an algorithm name ("max", "avg", "energy-optimal"); throws
/// pals::Error on anything else.
Algorithm algorithm_by_name(const std::string& name);

/// One point of the scenario grid.
struct Scenario {
  /// Registry instance name ("CG-32") or an inline workload spec
  /// "family:ranks:target_lb[:iterations]" (e.g. "lu:32:0.93:6").
  std::string workload;
  /// Gear-set name for gear_set_by_name() ("uniform-6", "avg-discrete",
  /// "continuous-unlimited", ...).
  std::string gear_set = "uniform-6";
  Algorithm algorithm = Algorithm::kMax;
  double beta = 0.5;
  /// Variant label for the result row; empty derives one from the
  /// controller / gear set / algorithm / β.
  std::string label;
  /// Online DVFS controller name (core/controllers.hpp): "static" (the
  /// paper's one-shot assignment), "dynamic_max", "dynamic_avg", "slack"
  /// or "ewma".
  std::string controller = "static";

  std::string variant_label() const;
};

/// Declarative cross-product grid; expand() yields the canonical scenario
/// order (workload-major, then gear set, algorithm, β).
struct SweepGrid {
  std::vector<std::string> workloads;
  std::vector<std::string> gear_sets;
  std::vector<Algorithm> algorithms = {Algorithm::kMax};
  /// Controller names (see Scenario::controller); validated on expand().
  std::vector<std::string> controllers = {"static"};
  std::vector<double> betas = {0.5};
  /// Iterations for workloads that do not carry their own count.
  int iterations = 10;

  /// Parse a key = value grid file (util/kvconfig.hpp) with
  /// comma-separated lists:
  ///
  ///   workloads   = CG-32, MG-32, lu:32:0.93:6
  ///   gear_sets   = uniform-6, avg-discrete
  ///   algorithms  = max, avg
  ///   controllers = static, dynamic_max, slack
  ///   betas       = 0.5
  ///   iterations  = 10
  static SweepGrid from_file(const std::string& path);

  void validate() const;
  std::vector<Scenario> expand() const;
};

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial.
  int jobs = 1;
  /// Iterations for registry workloads and specs without an explicit
  /// count (SweepGrid::expand carries the grid's value through
  /// run_sweep(grid, ...)).
  int iterations = 10;
  /// Configuration applied to every scenario; the scenario's gear set,
  /// algorithm and β override the corresponding fields. Platform and
  /// power knobs (static fraction, activity ratio, ...) pass through.
  /// Setting base.lint statically verifies every workload trace once,
  /// up front (phase 1), aborting the sweep with a full lint report
  /// instead of a mid-replay deadlock throw.
  PipelineConfig base = default_pipeline_config(paper_uniform(6));
  /// Optional shared trace cache (must outlive the call); run_sweep uses
  /// a private one when null.
  TraceCache* trace_cache = nullptr;
  /// When non-null, a periodic progress line
  /// ("sweep: k/N scenarios, elapsed Xs, ETA Ys") is written to this
  /// stream while the scenario fan-out runs, driven by the
  /// "sweep.scenarios_completed" metrics counter (pals_sweep --progress
  /// points this at stderr). Null (the default) disables progress output.
  std::ostream* progress_stream = nullptr;
  /// Seconds between progress lines.
  double progress_interval_seconds = 1.0;
  /// Optional fault injector (not owned; must outlive the call).
  /// Simulated faults (link_degrade, node_slowdown, gear_stuck,
  /// msg_delay_jitter) perturb every scenario's replays — the injector is
  /// threaded through PipelineConfig::replay.faults, overriding whatever
  /// `base` carries. Scenario faults (scenario_flaky, scenario_crash)
  /// fail cells by canonical grid index before the pipeline runs.
  const fault::Injector* faults = nullptr;
  /// Quarantine failing cells into SweepResult::errors and keep sweeping
  /// instead of aborting on the first scenario error. Lint and baseline
  /// failures quarantine every cell of the affected workload; other
  /// workloads are unaffected.
  bool keep_going = false;
  /// Retry policy for transient failures (fault::TransientError). Backoff
  /// is accounted in simulated seconds — never slept — so retried sweeps
  /// stay byte-identical across thread counts.
  fault::RetryPolicy retry;

  // --- Crash-safe execution (docs/resume.md) -------------------------------

  /// When non-empty, every terminal cell (result row or quarantined
  /// error) is durably appended to this journal file (analysis/
  /// journal.hpp) the moment it completes, making the sweep resumable
  /// after a crash. Created fresh unless `resume` is also set, in which
  /// case the existing journal is extended.
  std::string journal_path;
  /// Journal of a previous, interrupted run of the *same* sweep (not
  /// owned; must outlive the call). Cells it records are pre-filled into
  /// their canonical slots and skipped; only the remainder re-runs.
  /// run_sweep throws if the journal's config hash or scenario count
  /// disagrees with the live sweep — jobs and cell_timeout_seconds may
  /// change between runs, everything result-affecting may not.
  const JournalReadReport* resume = nullptr;
  /// Per-cell wall-clock watchdog, seconds (0 = off): threaded into
  /// ReplayConfig::max_wall_seconds for the baseline and every scenario
  /// replay, so a host-side hang becomes a structured kTimeout error the
  /// fault machinery can quarantine instead of wedging the sweep. Host-
  /// time dependent — keep off in determinism comparisons.
  double cell_timeout_seconds = 0.0;
  /// Cooperative cancellation flag (not owned; may be set from a signal
  /// handler). Once true, cells that have not started are skipped —
  /// in-flight cells finish and are journaled — and the sweep returns
  /// with SweepResult::interrupted set instead of throwing.
  const std::atomic<bool>* cancel = nullptr;
  /// Test hook: invoked after each durable journal append with the
  /// number of records this run has appended so far. Called with the
  /// journal lock held — keep it cheap. pals_sweep's --kill-after /
  /// --interrupt-after use it to die at a deterministic point.
  std::function<void(std::size_t)> on_journal_record;

  // --- Sharded execution (docs/sharding.md) --------------------------------

  /// Deterministic shard partitioning: this process owns only the grid
  /// cells shard::shard_of_cell (or, with prune_bounds, whole workload
  /// groups via shard::shard_of_group) assigns to shard_index of
  /// shard_count. Foreign cells are not run, journaled or counted as
  /// skipped; the shard's results/errors/pruned cover exactly its own
  /// subset, and pals_shepherd's merge folds the shards back into the
  /// unsharded byte-identical artifacts. shard_count == 1 (default)
  /// disables sharding. Execution-only — excluded from
  /// sweep_config_hash, so every shard journal (and the unsharded run)
  /// shares one hash.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Liveness heartbeats (docs/sharding.md): when > 0 and a journal is
  /// active, a background thread appends one "H" record every interval
  /// so a supervisor can tell a slow worker from a hung one. Host-time
  /// dependent, liveness-only; never invokes on_journal_record and
  /// never affects cell records or merged CSVs. 0 (default) disables.
  double heartbeat_interval_seconds = 0.0;

  // --- Static bounds integration (docs/bounds.md) --------------------------

  /// Branch-and-bound cell pruning: before a cell replays, its static
  /// lower-bound point (bounds::analyze) is compared against the cells of
  /// the same workload that already completed; when one Pareto-dominates
  /// the optimistic point, the replay is provably off the front and is
  /// skipped (recorded in SweepResult::pruned, journal kind "P", no
  /// results.csv row). Surviving rows — and the extracted Pareto front —
  /// stay byte-identical to an unpruned sweep. Cells of one workload run
  /// serially (workloads still fan out across threads) so the dominator
  /// set is deterministic at any jobs count. Incompatible with fault
  /// injection and per-phase configs (run_sweep throws).
  bool prune_bounds = false;
  /// Post-replay soundness oracle: assert every replayed cell lands inside
  /// its static makespan/energy interval, failing the cell with the
  /// kBoundViolationTime / kBoundViolationEnergy diagnostics on escape.
  /// On by default; disarmed automatically under fault injection or
  /// per-phase configs (the analyzer does not model either).
  bool bounds_oracle = true;
};

/// Fingerprint of everything that determines a sweep's *results*: the
/// scenario list, iterations, keep_going, the retry policy and the fault
/// plan. Deliberately excludes jobs, progress, journaling and the cell
/// timeout, which may differ between an interrupted run and its resume.
/// Stored in the journal header; resume validates it.
std::string sweep_config_hash(const std::vector<Scenario>& scenarios,
                              const SweepOptions& options);

/// Provenance of one cell skipped by SweepOptions::prune_bounds: the
/// static lower-bound point that was dominated and the completed cell
/// that dominated it (docs/bounds.md).
struct PrunedCell {
  std::size_t index = 0;        ///< canonical grid index of the pruned cell
  std::string workload;         ///< display name
  std::string variant;          ///< scenario variant label
  double lb_normalized_time = 0.0;    ///< optimistic point, time axis
  double lb_normalized_energy = 0.0;  ///< optimistic point, energy axis
  std::size_t dominated_by = 0;       ///< grid index of the dominating cell
  std::string dominated_by_variant;   ///< its variant label
};

/// One quarantined grid cell (only produced with SweepOptions::keep_going).
struct ScenarioError {
  std::size_t index = 0;    ///< canonical grid index of the failed cell
  std::string workload;     ///< display name
  std::string variant;      ///< scenario variant label
  fault::ErrorClass error_class = fault::ErrorClass::kPermanent;
  int attempts = 1;         ///< attempts made (retries + 1)
  int retries = 0;
  Seconds backoff_seconds = 0.0;  ///< simulated backoff accrued
  std::string message;      ///< final error text

  /// One-line "cell <index> <workload> [<variant>]: <class> ..." report.
  std::string describe() const;
};

/// Timing/throughput counters of one sweep, for the machine-readable
/// summary (timings are wall-clock and therefore *not* deterministic —
/// only SweepResult::rows is).
struct SweepStats {
  std::size_t scenarios = 0;
  std::size_t workloads = 0;  ///< unique workloads (= baseline replays run)
  int jobs = 1;
  double wall_seconds = 0.0;
  double scenarios_per_second = 0.0;
  std::size_t baseline_cache_misses = 0;  ///< baselines actually computed
  std::size_t baseline_cache_hits = 0;    ///< scenarios served from cache
  double baseline_cache_hit_rate = 0.0;
  double scenario_seconds_total = 0.0;  ///< Σ per-scenario replay time
  double scenario_seconds_max = 0.0;    ///< slowest single scenario
  /// Fault-tolerance accounting (all deterministic).
  std::size_t quarantined = 0;       ///< cells that ended in errors
  std::size_t transient_retries = 0; ///< retry attempts across all cells
  double backoff_seconds = 0.0;      ///< simulated backoff accrued
  /// Crash-safe execution accounting (docs/resume.md).
  std::size_t resumed_cells = 0;   ///< cells pre-filled from a resume journal
  std::size_t skipped_cells = 0;   ///< cells skipped by cancellation
  std::size_t journal_records = 0; ///< records durably appended this run
  /// Cells skipped by --prune-bounds (docs/bounds.md); deterministic.
  std::size_t pruned_cells = 0;
  /// Sharded execution accounting (docs/sharding.md); owned/foreign are
  /// deterministic, heartbeats are host-time driven.
  std::size_t shard_cells_owned = 0;    ///< cells this shard is assigned
  std::size_t shard_cells_foreign = 0;  ///< cells owned by other shards
  std::size_t heartbeats_written = 0;   ///< "H" records appended this run

  /// "key = value" lines, parseable by util/kvconfig.hpp.
  std::string to_kv() const;
};

struct SweepResult {
  /// One row per *successful* scenario, in canonical grid order (every
  /// scenario succeeds when no faults are injected and nothing fails).
  std::vector<ExperimentRow> rows;
  /// Wall-clock seconds each successful scenario's pipeline took (same
  /// order as rows).
  std::vector<double> scenario_seconds;
  /// Quarantined cells in canonical grid order; empty unless
  /// SweepOptions::keep_going let failing cells be recorded.
  std::vector<ScenarioError> errors;
  /// Cells skipped by SweepOptions::prune_bounds, canonical grid order.
  std::vector<PrunedCell> pruned;
  SweepStats stats;
  /// Cancellation (SweepOptions::cancel) stopped the sweep before every
  /// cell ran: rows/errors cover only the cells that reached a terminal
  /// state. With a journal the run is resumable; callers should exit
  /// with ToolExit::kInterrupted rather than treat the output as final.
  bool interrupted = false;

  bool has_errors() const { return !errors.empty(); }
};

/// Run an explicit scenario list. Scenario errors (unknown workload or
/// gear set) throw pals::Error naming the offending scenario; runtime
/// cell failures throw unless SweepOptions::keep_going quarantines them.
SweepResult run_sweep(const std::vector<Scenario>& scenarios,
                      const SweepOptions& options = {});

/// Expand and run a grid (grid.iterations overrides options.iterations).
SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options = {});

/// Render quarantined cells as deterministic CSV. The header line is
/// always emitted, so a clean keep_going sweep yields a header-only file
/// (an unambiguous "nothing was quarantined" artifact). Multi-line
/// diagnostics (lint reports, deadlock cycles) are flattened onto one
/// line so every record stays a single CSV row.
std::string errors_to_csv(const std::vector<ScenarioError>& errors);

/// Write errors_to_csv(errors) to `path` (throws on I/O failure).
void write_errors_csv(const std::vector<ScenarioError>& errors,
                      const std::string& path);

/// Render pruned-cell provenance as deterministic CSV (header always
/// emitted, like errors_to_csv).
std::string pruned_to_csv(const std::vector<PrunedCell>& pruned);

/// Write pruned_to_csv(pruned) to `path` (throws on I/O failure).
void write_pruned_csv(const std::vector<PrunedCell>& pruned,
                      const std::string& path);

}  // namespace pals
