// Per-iteration imbalance statistics.
//
// The paper's static assignment assumes "regular, iterative behavior with
// fixed computation time ratio among processes". This module quantifies
// how well a trace satisfies that assumption:
//  * per-iteration load balance and its spread,
//  * the drift index: 1 − min over iterations of the correlation between
//    an iteration's per-rank load vector and the whole-run totals.
//    ~0 = every iteration mirrors the aggregate (static DVFS is optimal);
//    ~1 = the pattern moves (use the dynamic runtime, core/jitter.hpp).
#pragma once

#include <vector>

#include "trace/trace.hpp"

namespace pals {

struct IterationStats {
  std::size_t iterations = 0;
  /// Load balance of the whole-run per-rank totals (what MAX/AVG see).
  double total_load_balance = 0.0;
  /// Load balance of each iteration.
  std::vector<double> per_iteration_load_balance;
  double mean_iteration_load_balance = 0.0;
  double min_iteration_load_balance = 0.0;
  /// Pearson correlation of each iteration's load vector with the totals.
  std::vector<double> iteration_correlation;
  /// 1 − min correlation, clamped to [0, 2] (negative correlation means
  /// the pattern inverts).
  double drift_index = 0.0;

  /// True when a whole-run static assignment captures most of the
  /// per-iteration slack (low drift, iteration LB close to total LB).
  bool static_assignment_sufficient(double tolerance = 0.1) const;
};

/// Compute statistics from an iteration-marked trace. Throws if the trace
/// carries no iteration markers.
IterationStats analyze_iterations(const Trace& trace);

/// Pearson correlation coefficient of two equal-length samples; 0 when
/// either sample has zero variance.
double pearson_correlation(std::span<const double> a,
                           std::span<const double> b);

}  // namespace pals
