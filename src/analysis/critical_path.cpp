#include "analysis/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

constexpr double kTimeEps = 1e-9;

/// The interval of `rank` that contains the instant just before `t`.
const StateInterval* interval_before(const Timeline& timeline, Rank rank,
                                     Seconds t) {
  const auto lane = timeline.intervals(rank);
  for (auto it = lane.rbegin(); it != lane.rend(); ++it) {
    if (it->begin < t - kTimeEps && it->end >= t - kTimeEps) return &*it;
    if (it->end < t - kTimeEps) break;
  }
  return nullptr;
}

/// Message delivered to `rank` at (approximately) time `t`, preferring the
/// latest delivery at or before t.
const MessageRecord* delivery_at(const ReplayResult& result, Rank rank,
                                 Seconds t) {
  const MessageRecord* best = nullptr;
  for (const MessageRecord& m : result.messages) {
    if (m.dst != rank) continue;
    if (m.recv_time > t + kTimeEps) continue;
    if (!best || m.recv_time > best->recv_time) best = &m;
  }
  return best;
}

/// Message the waiting *sender* `rank` completed at time `t` (rendezvous
/// isend waits resolve through the receiver side).
const MessageRecord* send_completion_at(const ReplayResult& result, Rank rank,
                                        Seconds t) {
  const MessageRecord* best = nullptr;
  for (const MessageRecord& m : result.messages) {
    if (m.src != rank) continue;
    if (m.recv_time > t + kTimeEps) continue;
    if (!best || m.recv_time > best->recv_time) best = &m;
  }
  return best;
}

/// When the receiver was blocked in a recv that completed at
/// `recv_time`, return the time it posted (the begin of that blocked
/// interval); otherwise (non-blocking receive) return `recv_time`.
Seconds receiver_post_time(const Timeline& timeline, Rank dst,
                           Seconds recv_time) {
  for (const StateInterval& iv : timeline.intervals(dst)) {
    if (iv.begin > recv_time + kTimeEps) break;
    if ((iv.state == RankState::kRecv || iv.state == RankState::kWait) &&
        std::abs(iv.end - recv_time) <= 1e-6)
      return iv.begin;
  }
  return recv_time;
}

/// Collective whose completion is (approximately) `t`.
const CollectiveRecord* collective_completing_at(const ReplayResult& result,
                                                 Seconds t) {
  const CollectiveRecord* best = nullptr;
  for (const CollectiveRecord& c : result.collectives) {
    if (c.completion > t + kTimeEps) continue;
    if (!best || c.completion > best->completion) best = &c;
  }
  return best;
}

}  // namespace

std::string to_string(PathActivity activity) {
  switch (activity) {
    case PathActivity::kCompute: return "compute";
    case PathActivity::kTransfer: return "transfer";
    case PathActivity::kCollective: return "collective";
    case PathActivity::kOverhead: return "overhead";
  }
  return "unknown";
}

Seconds CriticalPath::total() const {
  Seconds t = 0.0;
  for (const PathSegment& s : segments) t += s.duration();
  return t;
}

CriticalPath critical_path(const ReplayResult& result) {
  const Timeline& timeline = result.timeline;
  PALS_CHECK_MSG(timeline.n_ranks() > 0, "empty timeline");
  const Seconds makespan = timeline.makespan();
  PALS_CHECK_MSG(makespan > 0.0, "zero-length execution");

  // Start from the rank whose non-idle work ends last.
  Rank rank = 0;
  Seconds best_end = -1.0;
  for (Rank r = 0; r < timeline.n_ranks(); ++r) {
    const auto lane = timeline.intervals(r);
    for (auto it = lane.rbegin(); it != lane.rend(); ++it) {
      if (it->state == RankState::kIdle) continue;
      if (it->end > best_end) {
        best_end = it->end;
        rank = r;
      }
      break;
    }
  }

  CriticalPath path;
  path.rank_share.assign(static_cast<std::size_t>(timeline.n_ranks()), 0.0);
  Seconds t = best_end;
  // Each step consumes at least one interval, so lanes bound the count.
  const std::size_t step_limit = 16 + 2 * result.simulated_events;

  std::vector<PathSegment> reversed;
  for (std::size_t step = 0; step < step_limit && t > kTimeEps; ++step) {
    const StateInterval* iv = interval_before(timeline, rank, t);
    if (iv == nullptr) break;  // lane starts later than t: chain grounded
    const Seconds seg_end = std::min(t, iv->end);

    switch (iv->state) {
      case RankState::kCompute:
      case RankState::kIdle:  // treat stray idle as local time
        reversed.push_back(
            {rank, iv->begin, seg_end, PathActivity::kCompute});
        t = iv->begin;
        break;

      case RankState::kSend: {
        // Blocking rendezvous send: released by the receiver's post; the
        // receiver's activity *before* that post is the real cause, and
        // its post time is the begin of its blocked-recv interval.
        const MessageRecord* m = send_completion_at(result, rank, seg_end);
        if (m == nullptr || m->send_time >= seg_end - kTimeEps) {
          reversed.push_back(
              {rank, iv->begin, seg_end, PathActivity::kOverhead});
          t = iv->begin;
          break;
        }
        const Seconds post =
            receiver_post_time(timeline, m->dst, m->recv_time);
        if (post <= m->send_time + kTimeEps) {
          // Receiver was already waiting: the send blocked on the
          // transfer itself; the chain continues on this rank.
          reversed.push_back(
              {-1, iv->begin, seg_end, PathActivity::kTransfer});
          t = iv->begin;
          break;
        }
        const Seconds jump = std::min(post, seg_end);
        reversed.push_back({-1, jump, seg_end, PathActivity::kTransfer});
        rank = m->dst;
        t = jump;
        break;
      }

      case RankState::kRecv:
      case RankState::kWait: {
        const MessageRecord* m = delivery_at(result, rank, seg_end);
        if (m == nullptr || m->send_time >= seg_end - kTimeEps) {
          // No resolvable dependency (e.g. wait on own eager isend):
          // charge the wait locally and continue backwards.
          reversed.push_back(
              {rank, iv->begin, seg_end, PathActivity::kOverhead});
          t = iv->begin;
          break;
        }
        reversed.push_back(
            {-1, m->send_time, seg_end, PathActivity::kTransfer});
        rank = m->src;
        t = m->send_time;
        break;
      }

      case RankState::kCollective: {
        const CollectiveRecord* c =
            collective_completing_at(result, seg_end);
        if (c == nullptr || c->arrivals.empty()) {
          reversed.push_back(
              {rank, iv->begin, seg_end, PathActivity::kOverhead});
          t = iv->begin;
          break;
        }
        Rank last_rank = c->arrivals.front().first;
        Seconds last_arrival = c->arrivals.front().second;
        for (const auto& [r, arrival] : c->arrivals) {
          if (arrival > last_arrival) {
            last_arrival = arrival;
            last_rank = r;
          }
        }
        if (last_arrival >= seg_end - kTimeEps) {
          reversed.push_back(
              {rank, iv->begin, seg_end, PathActivity::kOverhead});
          t = iv->begin;
          break;
        }
        reversed.push_back(
            {-1, last_arrival, seg_end, PathActivity::kCollective});
        rank = last_rank;
        t = last_arrival;
        break;
      }
    }
  }

  std::reverse(reversed.begin(), reversed.end());
  path.segments = std::move(reversed);

  Seconds compute = 0.0;
  Seconds network = 0.0;
  Rank previous = -2;
  for (const PathSegment& s : path.segments) {
    if (s.rank >= 0) {
      path.rank_share[static_cast<std::size_t>(s.rank)] += s.duration();
      if (previous >= -1 && s.rank != previous) ++path.rank_switches;
      previous = s.rank;
    }
    if (s.activity == PathActivity::kCompute ||
        s.activity == PathActivity::kOverhead)
      compute += s.activity == PathActivity::kCompute ? s.duration() : 0.0;
    else
      network += s.duration();
  }
  const Seconds total = path.total();
  if (total > 0.0) {
    path.compute_fraction = compute / total;
    path.network_fraction = network / total;
  }
  return path;
}

std::string render_critical_path(const CriticalPath& path,
                                 std::size_t max_segments) {
  std::ostringstream os;
  os << "critical path: " << format_fixed(path.total() * 1e3, 3) << " ms, "
     << format_percent(path.compute_fraction) << " compute, "
     << format_percent(path.network_fraction) << " network, "
     << path.rank_switches << " rank switches\n";
  const std::size_t n = std::min(max_segments, path.segments.size());
  for (std::size_t i = 0; i < n; ++i) {
    const PathSegment& s = path.segments[i];
    os << "  [" << format_fixed(s.begin * 1e3, 3) << ", "
       << format_fixed(s.end * 1e3, 3) << "] ms  ";
    if (s.rank >= 0)
      os << "rank " << s.rank << ' ';
    os << to_string(s.activity) << '\n';
  }
  if (path.segments.size() > n)
    os << "  ... " << path.segments.size() - n << " more segments\n";
  return os.str();
}

}  // namespace pals
