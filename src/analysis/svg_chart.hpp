// Minimal SVG chart rendering: line charts (power profiles, sweeps) and
// scatter plots (energy vs load balance, Figure 3). Self-contained SVG
// documents with axes, ticks, legends and tooltips — no external
// dependencies, viewable in any browser.
#pragma once

#include <string>
#include <vector>

namespace pals {

struct ChartSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  /// Draw straight segments between points; false = markers only.
  bool connect = true;
};

struct ChartOptions {
  int width_px = 640;
  int height_px = 360;
  std::string title;
  std::string x_label;
  std::string y_label;
  /// Force the y axis to start at zero (typical for normalized energy).
  bool y_from_zero = true;
};

/// Render one or more series into a standalone SVG document. Series get
/// distinct colors; every point carries a hover tooltip.
std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options = {});

void write_chart_file(const std::vector<ChartSeries>& series,
                      const std::string& path,
                      const ChartOptions& options = {});

}  // namespace pals
