#include "analysis/experiments.hpp"

#include <iostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/kvconfig.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace pals {

PipelineConfig default_pipeline_config(const GearSet& gear_set,
                                       Algorithm algorithm) {
  PipelineConfig config;
  config.algorithm.algorithm = algorithm;
  config.algorithm.gear_set = gear_set;
  config.algorithm.beta = 0.5;
  config.algorithm.nominal_fmax_ghz = kPaperFmaxGhz;
  config.power.activity_ratio = 1.5;
  config.power.static_fraction = 0.2;
  config.power.beta = 0.5;
  config.power.reference =
      VoltageModel::paper_default().gear(kPaperFmaxGhz);
  return config;
}

WorkloadRef resolve_workload(const std::string& spec, int default_iterations) {
  if (spec.find(':') == std::string::npos) {
    const auto instance = benchmark_by_name(spec, default_iterations);
    PALS_CHECK_MSG(instance.has_value(),
                   "unknown workload '"
                       << spec
                       << "' (not a Table 3 instance; inline specs use "
                          "family:ranks:lb[:iterations])");
    return WorkloadRef{spec, spec,
                       [inst = *instance] { return inst.make(); }};
  }
  const std::vector<std::string> parts = split(spec, ':');
  PALS_CHECK_MSG(parts.size() == 3 || parts.size() == 4,
                 "bad workload spec '" << spec
                                       << "' (family:ranks:lb[:iterations])");
  WorkloadConfig config;
  config.ranks = static_cast<Rank>(parse_int(parts[1]));
  config.target_lb = parse_double(parts[2]);
  config.iterations =
      parts.size() == 4 ? static_cast<int>(parse_int(parts[3]))
                        : default_iterations;
  PALS_CHECK_MSG(config.ranks > 0, "workload spec '" << spec
                                                     << "': ranks must be > 0");
  PALS_CHECK_MSG(config.target_lb > 0.0 && config.target_lb <= 1.0,
                 "workload spec '" << spec << "': lb must be in (0, 1]");
  PALS_CHECK_MSG(config.iterations > 0,
                 "workload spec '" << spec << "': iterations must be > 0");
  const std::string family = parts[0];
  const auto factory = workload_factory(family);  // throws on unknown family
  // Canonical key includes the resolved iteration count so grids with
  // different defaults never collide in a shared cache. The display name
  // is the same fully-qualified spec: two instances of one family that
  // differ only in lb or iteration count must stay distinct in result
  // rows — per-instance groupings (the Pareto front) key on it.
  const std::string key = parts.size() == 4
                              ? spec
                              : spec + ":" + std::to_string(config.iterations);
  return WorkloadRef{key, key,
                     [factory, config] { return factory(config); }};
}

void set_beta(PipelineConfig& config, double beta) {
  config.algorithm.beta = beta;
  config.power.beta = beta;
}

void apply_config_file(PipelineConfig& config, const std::string& path) {
  const KvConfig kv = KvConfig::parse_file(path);
  kv.require_known_keys({"latency", "bandwidth", "eager_threshold", "buses",
                         "links_per_node", "collective_scale", "beta",
                         "static_fraction", "activity_ratio", "idle_scale",
                         "transition_latency", "transition_energy",
                         "slack_threshold", "hysteresis", "ewma_alpha"});
  PlatformModel& platform = config.replay.platform;
  platform.latency = kv.get_double_or("latency", platform.latency);
  platform.bandwidth = kv.get_double_or("bandwidth", platform.bandwidth);
  platform.eager_threshold = static_cast<Bytes>(kv.get_int_or(
      "eager_threshold", static_cast<long long>(platform.eager_threshold)));
  platform.buses =
      static_cast<std::int32_t>(kv.get_int_or("buses", platform.buses));
  platform.links_per_node = static_cast<std::int32_t>(
      kv.get_int_or("links_per_node", platform.links_per_node));
  platform.collective_scale =
      kv.get_double_or("collective_scale", platform.collective_scale);
  if (kv.has("beta")) set_beta(config, kv.get_double("beta"));
  config.power.static_fraction =
      kv.get_double_or("static_fraction", config.power.static_fraction);
  config.power.activity_ratio =
      kv.get_double_or("activity_ratio", config.power.activity_ratio);
  config.power.idle_scale =
      kv.get_double_or("idle_scale", config.power.idle_scale);
  ControllerOptions& ctrl = config.controller;
  ctrl.transition_latency =
      kv.get_double_or("transition_latency", ctrl.transition_latency);
  ctrl.transition_energy =
      kv.get_double_or("transition_energy", ctrl.transition_energy);
  ctrl.slack_threshold =
      kv.get_double_or("slack_threshold", ctrl.slack_threshold);
  ctrl.hysteresis = kv.get_double_or("hysteresis", ctrl.hysteresis);
  ctrl.ewma_alpha = kv.get_double_or("ewma_alpha", ctrl.ewma_alpha);
  config.validate();
}

ExperimentRow flatten_result(const PipelineResult& result,
                             const std::string& instance,
                             const std::string& variant) {
  ExperimentRow row;
  row.instance = instance;
  row.variant = variant;
  row.load_balance = result.load_balance;
  row.parallel_efficiency = result.parallel_efficiency;
  row.normalized_energy = result.normalized_energy();
  row.normalized_time = result.normalized_time();
  row.normalized_edp = result.normalized_edp();
  row.overclocked_fraction = result.overclocked_fraction;
  return row;
}

ExperimentRow run_experiment(const Trace& trace, const std::string& instance,
                             const std::string& variant,
                             const PipelineConfig& config) {
  return flatten_result(run_pipeline(trace, config), instance, variant);
}

ExperimentRow run_experiment(const Trace& trace, const ReplayResult& baseline,
                             const std::string& instance,
                             const std::string& variant,
                             const PipelineConfig& config) {
  return flatten_result(run_pipeline(trace, config, baseline), instance,
                        variant);
}

const Trace& TraceCache::get(const BenchmarkInstance& instance) {
  return get(instance.name, [&instance] { return instance.make(); });
}

const Trace& TraceCache::get(const std::string& key,
                             const std::function<Trace()>& build) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traces_.find(key);
  if (it != traces_.end()) return it->second;
  return traces_.emplace(key, build()).first->second;
}

void print_rows(const std::vector<ExperimentRow>& rows,
                const std::string& title, const std::string& csv_path) {
  std::cout << "\n== " << title << " ==\n";
  TextTable table({"instance", "variant", "LB", "PE", "energy", "time", "EDP",
                   "overclocked"});
  for (const ExperimentRow& r : rows) {
    table.add_row({r.instance, r.variant, format_percent(r.load_balance),
                   format_percent(r.parallel_efficiency),
                   format_percent(r.normalized_energy),
                   format_percent(r.normalized_time),
                   format_percent(r.normalized_edp),
                   format_percent(r.overclocked_fraction)});
  }
  table.print(std::cout);

  if (!csv_path.empty()) {
    write_rows_csv(rows, csv_path);
    std::cout << "csv written to " << csv_path << '\n';
  }
}

std::string rows_to_csv(const std::vector<ExperimentRow>& rows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"instance", "variant", "load_balance", "parallel_efficiency",
           "normalized_energy", "normalized_time", "normalized_edp",
           "overclocked_fraction"});
  for (const ExperimentRow& r : rows) {
    csv.field(r.instance)
        .field(r.variant)
        .field(r.load_balance)
        .field(r.parallel_efficiency)
        .field(r.normalized_energy)
        .field(r.normalized_time)
        .field(r.normalized_edp)
        .field(r.overclocked_fraction);
    csv.end_row();
  }
  return out.str();
}

void write_rows_csv(const std::vector<ExperimentRow>& rows,
                    const std::string& path) {
  atomic_write_file(path, rows_to_csv(rows));
}

}  // namespace pals
