#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <variant>

#include "core/bound.hpp"
#include "core/controller_pipeline.hpp"
#include "lint/lint.hpp"
#include "network/platform.hpp"
#include "obs/metrics.hpp"
#include "trace/transform.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {
namespace bounds {

namespace {

/// Relative/absolute widening applied to every non-exact interval end:
/// the analyzer and the replay accumulate the same sums in different
/// orders, so they agree only up to FP round-off. 1e-9 is ~1e6 ulps —
/// orders of magnitude above any realistic accumulation error, orders of
/// magnitude below any scenario-to-scenario margin.
constexpr double kRelSlack = 1e-9;
constexpr double kAbsSlack = 1e-12;

double widen_down(double value) {
  return value - std::abs(value) * kRelSlack - kAbsSlack;
}

double widen_up(double value) {
  return value + std::abs(value) * kRelSlack + kAbsSlack;
}

/// Mirror of the controller pipeline's gear_stuck pinning: the effective
/// gear of a pinned rank is the extreme one, for the seed and for every
/// later decision (core/controller_pipeline.cpp).
void pin_stuck_gears(std::vector<Gear>& gears, const PipelineConfig& config) {
  if (config.replay.faults == nullptr ||
      !config.replay.faults->has_stuck_gears())
    return;
  for (std::size_t r = 0; r < gears.size(); ++r) {
    const std::optional<fault::StuckGear> stuck =
        config.replay.faults->stuck_gear(static_cast<Rank>(r));
    if (!stuck) continue;
    gears[r] = *stuck == fault::StuckGear::kMin
                   ? config.algorithm.gear_set.min_gear()
                   : config.algorithm.gear_set.max_gear();
  }
}

/// Compute sums of one collective segment, keyed by iteration label
/// (-1 = outside any iteration). Kept as a run-length list: bursts of one
/// iteration are contiguous, so the list stays tiny.
struct SegmentSums {
  std::vector<std::pair<std::int32_t, Seconds>> by_iteration;

  void add(std::int32_t iteration, Seconds duration) {
    if (!by_iteration.empty() && by_iteration.back().first == iteration) {
      by_iteration.back().second += duration;
      return;
    }
    by_iteration.emplace_back(iteration, duration);
  }
};

/// The schedule-independent shape of a trace: its comm volume, the
/// per-slot collective program, and per-rank compute split by collective
/// segment and iteration label. One walk over the events.
struct TraceShape {
  lint::CommVolume volume;
  std::size_t slots = 0;
  /// [rank][segment 0..slots] — segment k precedes collective slot k.
  std::vector<std::vector<SegmentSums>> segments;
  /// [rank][iteration] -> segment holding that iteration's begin marker
  /// (where add_iteration_overhead inserts transition stalls).
  std::vector<std::vector<std::size_t>> iteration_segment;
};

TraceShape shape_of(const Trace& trace) {
  TraceShape shape;
  shape.volume = lint::comm_volume(trace);
  shape.slots = shape.volume.collectives.size();
  const auto n = static_cast<std::size_t>(trace.n_ranks());
  const std::size_t iterations = trace.iteration_count();
  shape.segments.assign(n, std::vector<SegmentSums>(shape.slots + 1));
  shape.iteration_segment.assign(n, std::vector<std::size_t>(iterations, 0));
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t segment = 0;
    std::int32_t iteration = -1;
    for (const Event& e : trace.events(static_cast<Rank>(r))) {
      if (const auto* m = std::get_if<MarkerEvent>(&e)) {
        if (m->kind == MarkerKind::kIterationBegin) {
          iteration = m->id;
          if (iteration >= 0 &&
              static_cast<std::size_t>(iteration) < iterations)
            shape.iteration_segment[r][static_cast<std::size_t>(iteration)] =
                segment;
        }
        if (m->kind == MarkerKind::kIterationEnd) iteration = -1;
      } else if (const auto* c = std::get_if<ComputeEvent>(&e)) {
        shape.segments[r][segment].add(iteration, c->duration);
      } else if (std::holds_alternative<CollectiveEvent>(e)) {
        // Slots past the common count never complete (replay would wedge);
        // fold trailing compute into the tail segment.
        if (segment < shape.slots) ++segment;
      }
    }
  }
  return shape;
}

/// The reconstructed DVFS schedule: rows[i] is the gear vector of
/// iteration i (a single row on the static path, applied everywhere).
struct Schedule {
  std::vector<std::vector<Gear>> rows;
  std::vector<std::vector<Seconds>> stalls;  ///< [iteration][rank], seconds
  std::size_t switches = 0;
  double transition_energy = 0.0;
  bool is_static = true;
};

/// Replicates core/controller_pipeline.cpp's decision loop exactly: the
/// controllers are deterministic and their observations (per-iteration
/// trace compute × the β time model) never depend on the DES, so the
/// schedule, switch count, stalls and transition energy are all static.
Schedule reconstruct_schedule(const Trace& trace, const PipelineConfig& config,
                              const std::vector<Seconds>& seed_compute) {
  const PowerModel power(config.power);
  const auto n = static_cast<std::size_t>(trace.n_ranks());
  Schedule schedule;

  if (config.controller.kind == ControllerKind::kStatic ||
      trace.iteration_count() == 0) {
    FrequencyAssignment assignment =
        config.algorithm.algorithm == Algorithm::kEnergyOptimalMax
            ? assign_frequencies_energy_optimal(seed_compute, config.algorithm,
                                                config.power)
            : assign_frequencies(seed_compute, config.algorithm);
    std::vector<Gear> gears = std::move(assignment.gears);
    pin_stuck_gears(gears, config);
    schedule.rows.push_back(std::move(gears));
    return schedule;
  }

  schedule.is_static = false;
  const std::vector<std::vector<Seconds>> base_times =
      iteration_computation_times(trace);
  const std::size_t iterations = base_times.size();
  schedule.stalls.assign(iterations, std::vector<Seconds>(n, 0.0));

  const std::unique_ptr<Controller> controller =
      make_controller(config.controller, config.algorithm, config.power);
  ControllerSeed seed;
  seed.n_ranks = n;
  seed.iterations = iterations;
  seed.total_compute = seed_compute;

  std::vector<Gear> gears = controller->start(seed);
  PALS_CHECK_MSG(gears.size() == n, "controller returned "
                                        << gears.size() << " gears for " << n
                                        << " ranks");
  pin_stuck_gears(gears, config);
  schedule.rows.reserve(iterations);
  schedule.rows.push_back(std::move(gears));

  for (std::size_t i = 0; i + 1 < iterations; ++i) {
    IterationObservation obs;
    obs.iteration = i;
    obs.applied_gears = schedule.rows[i];
    obs.observed_compute.resize(n);
    for (std::size_t r = 0; r < n; ++r)
      obs.observed_compute[r] =
          base_times[i][r] *
          power.time_scale(schedule.rows[i][r].frequency_ghz);

    std::vector<Gear> next = controller->observe(obs);
    PALS_CHECK_MSG(next.size() == n, "controller returned "
                                         << next.size() << " gears for " << n
                                         << " ranks");
    pin_stuck_gears(next, config);
    for (std::size_t r = 0; r < n; ++r) {
      if (next[r].frequency_ghz == schedule.rows[i][r].frequency_ghz &&
          next[r].voltage_v == schedule.rows[i][r].voltage_v)
        continue;
      ++schedule.switches;
      schedule.stalls[i + 1][r] = config.controller.transition_latency;
    }
    schedule.rows.push_back(std::move(next));
  }
  schedule.transition_energy = static_cast<double>(schedule.switches) *
                               config.controller.transition_energy;
  return schedule;
}

}  // namespace

ScenarioBounds analyze(const Trace& trace, const PipelineConfig& config,
                       const ReplayResult* baseline) {
  config.validate();
  PALS_CHECK_MSG(!config.per_phase,
                 "bounds analysis does not support per-phase assignment "
                 "(no single schedule to bound)");
  PALS_CHECK_MSG(trace.n_ranks() > 0, "bounds analysis of an empty trace");
  obs::default_registry().counter("bounds.analyze").add(1);

  const PowerModel power(config.power);
  const PlatformModel& platform = config.replay.platform;
  const auto n = static_cast<std::size_t>(trace.n_ranks());
  const TraceShape shape = shape_of(trace);

  // Seed compute profile: exactly what the pipelines hand the assigners —
  // the baseline replay's per-rank compute when available, the trace's
  // compute sums (per-rank relative speed applied) otherwise.
  std::vector<double> speed(n, 1.0);
  if (!config.replay.relative_speed.empty())
    for (std::size_t r = 0; r < n; ++r)
      speed[r] = config.replay.relative_speed[r];
  std::vector<Seconds> seed_compute;
  if (baseline != nullptr) {
    seed_compute = baseline->compute_time;
  } else {
    seed_compute = trace.computation_times();
    for (std::size_t r = 0; r < n; ++r) seed_compute[r] /= speed[r];
  }

  const Schedule schedule = reconstruct_schedule(trace, config, seed_compute);
  const auto gear_at = [&](std::size_t r, std::int32_t iteration) -> const Gear& {
    if (schedule.is_static || iteration < 0 ||
        static_cast<std::size_t>(iteration) >= schedule.rows.size())
      return schedule.rows.front()[r];
    return schedule.rows[static_cast<std::size_t>(iteration)][r];
  };

  // Scaled compute per rank and collective segment (timeline seconds,
  // i.e. after the per-rank relative-speed division replay applies), the
  // exact compute energy, and each rank's idle-power range.
  std::vector<std::vector<Seconds>> segment_compute(
      n, std::vector<Seconds>(shape.slots + 1, 0.0));
  std::vector<Seconds> rank_compute(n, 0.0);
  double compute_energy = 0.0;
  std::vector<double> idle_power_min(n, 0.0);
  std::vector<double> idle_power_max(n, 0.0);
  bool all_at_or_below_reference = true;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k <= shape.slots; ++k) {
      for (const auto& [iteration, sum] : shape.segments[r][k].by_iteration) {
        const Gear& gear = gear_at(r, iteration);
        const Seconds scaled =
            sum * power.time_scale(gear.frequency_ghz) / speed[r];
        segment_compute[r][k] += scaled;
        compute_energy += scaled * power.total_power(gear, true);
      }
    }
    if (!schedule.is_static) {
      for (std::size_t i = 0; i < schedule.stalls.size(); ++i) {
        const Seconds stall = schedule.stalls[i][r];
        if (stall <= 0.0) continue;
        // Transition stalls are wall-clock compute bursts inserted at the
        // iteration's start (add_iteration_overhead), charged at that
        // iteration's gear and divided by the rank's relative speed.
        const Seconds scaled = stall / speed[r];
        segment_compute[r][shape.iteration_segment[r][i]] += scaled;
        compute_energy +=
            scaled *
            power.total_power(gear_at(r, static_cast<std::int32_t>(i)), true);
      }
    }
    for (std::size_t k = 0; k <= shape.slots; ++k)
      rank_compute[r] += segment_compute[r][k];

    double p_min = 0.0;
    double p_max = 0.0;
    bool first = true;
    const auto consider = [&](const Gear& gear) {
      const double p = power.total_power(gear, false);
      p_min = first ? p : std::min(p_min, p);
      p_max = first ? p : std::max(p_max, p);
      first = false;
      if (power.time_scale(gear.frequency_ghz) < 1.0)
        all_at_or_below_reference = false;
    };
    if (schedule.is_static) {
      consider(schedule.rows.front()[r]);
    } else {
      for (const auto& row : schedule.rows) consider(row[r]);
    }
    idle_power_min[r] = p_min;
    idle_power_max[r] = p_max;
  }

  // Collective slot costs, exactly as replay prices them.
  std::vector<Seconds> slot_cost(shape.slots, 0.0);
  Seconds total_slot_cost = 0.0;
  for (std::size_t k = 0; k < shape.slots; ++k) {
    slot_cost[k] =
        collective_cost(platform, shape.volume.collectives[k].op,
                        trace.n_ranks(), shape.volume.collectives[k].max_bytes);
    total_slot_cost += slot_cost[k];
  }

  ScenarioBounds result;
  result.iterations = schedule.is_static ? 0 : schedule.rows.size();
  result.switches = schedule.switches;

  // Lower time bound: collective-segment critical path. Every rank
  // resumes at a collective's completion, so completion times chain:
  //   end(k) >= end(k-1) + max_r compute_between(r, k) + cost(k).
  double critical_path = 0.0;
  for (std::size_t k = 0; k <= shape.slots; ++k) {
    double slowest = 0.0;
    for (std::size_t r = 0; r < n; ++r)
      slowest = std::max(slowest, segment_compute[r][k]);
    critical_path += slowest;
    if (k < shape.slots) critical_path += slot_cost[k];
  }
  result.makespan.lo = std::max(0.0, widen_down(critical_path));
  const bool contention_free = platform.buses == 0 && platform.links_per_node == 0;
  if (baseline != nullptr && contention_free &&
      config.replay.faults == nullptr && all_at_or_below_reference) {
    // Exact floor, deliberately not widened: FP max/+/x are monotone, so
    // stretching compute can only delay a contention-free DES.
    result.makespan.lo = std::max(result.makespan.lo, baseline->makespan);
    result.monotonicity_floor = true;
  }

  // Upper time bound: full serialization of compute, p2p and collectives.
  double serialized = total_slot_cost;
  for (std::size_t r = 0; r < n; ++r) serialized += rank_compute[r];
  serialized += static_cast<double>(shape.volume.messages) * 2.0 *
                platform.latency;
  if (platform.bandwidth > 0.0)
    serialized += static_cast<double>(shape.volume.total_bytes) /
                  platform.bandwidth;
  result.makespan.hi = widen_up(serialized);

  // Energy: exact compute + transition energy, plus each rank's
  // non-compute residency (makespan − compute) priced at the extreme idle
  // powers its scheduled gears admit.
  double energy_lo = compute_energy + schedule.transition_energy;
  double energy_hi = compute_energy + schedule.transition_energy;
  double idle_min_total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    energy_lo += std::max(0.0, result.makespan.lo - rank_compute[r]) *
                 idle_power_min[r];
    energy_hi += std::max(0.0, result.makespan.hi - rank_compute[r]) *
                 idle_power_max[r];
    idle_min_total += idle_power_min[r];
  }
  result.energy.lo = std::max(0.0, widen_down(energy_lo));
  result.energy.hi = widen_up(energy_hi);

  // Average-power floor: E(T) >= A + B·T with A = exact compute energy
  // above its own idle floor and B = total minimum idle power, so
  // E/T >= B + A/T is monotone and attains its minimum at an interval end.
  double offset = compute_energy + schedule.transition_energy;
  for (std::size_t r = 0; r < n; ++r)
    offset -= rank_compute[r] * idle_power_min[r];
  const double at =
      offset >= 0.0 ? result.makespan.hi : std::max(result.makespan.lo, kAbsSlack);
  result.min_average_power =
      std::max(0.0, widen_down(idle_min_total + offset / at));

  if (baseline != nullptr) {
    result.normalized = true;
    const double baseline_time = baseline->makespan;
    const double baseline_energy = power.baseline_energy(baseline->timeline);
    result.normalized_time.lo = result.makespan.lo / baseline_time;
    result.normalized_time.hi = result.makespan.hi / baseline_time;
    result.normalized_energy.lo = result.energy.lo / baseline_energy;
    result.normalized_energy.hi = result.energy.hi / baseline_energy;
  }

  // Continuous reference floor (Rountree LP specialization) at the
  // slowdown this scenario's upper bound admits, over the gear range.
  const Seconds seed_max =
      *std::max_element(seed_compute.begin(), seed_compute.end());
  if (seed_max > 0.0) {
    EnergyBoundConfig bound_config;
    bound_config.power = config.power;
    bound_config.fmax_ghz = config.algorithm.nominal_fmax_ghz;
    bound_config.fmin_ghz =
        std::min(config.algorithm.gear_set.min_gear().frequency_ghz,
                 bound_config.fmax_ghz);
    const Seconds reference_time =
        baseline != nullptr ? baseline->makespan
                            : std::max(critical_path, seed_max);
    const double slowdown = std::max(
        0.0, result.makespan.hi / std::max(reference_time, kAbsSlack) - 1.0);
    result.continuous_energy_floor =
        energy_saving_bound(seed_compute, std::max(reference_time, seed_max),
                            slowdown, bound_config)
            .normalized_energy;
  }
  return result;
}

std::vector<lint::Diagnostic> check_soundness(const ScenarioBounds& bounds,
                                              Seconds actual_makespan,
                                              double actual_energy) {
  std::vector<lint::Diagnostic> diagnostics;
  const auto report = [&](lint::Code code, const char* metric, double actual,
                          const Interval& interval) {
    std::ostringstream os;
    os << metric << ' ' << format_roundtrip(actual)
       << " escaped the static interval [" << format_roundtrip(interval.lo)
       << ", " << format_roundtrip(interval.hi) << ']';
    diagnostics.push_back(lint::Diagnostic{lint::severity_of(code), -1, -1,
                                           code, os.str()});
    obs::default_registry()
        .counter("lint.diag." + lint::to_string(code))
        .add(1);
  };
  if (!bounds.makespan.contains(actual_makespan))
    report(lint::Code::kBoundViolationTime, "replayed makespan",
           actual_makespan, bounds.makespan);
  if (!bounds.energy.contains(actual_energy))
    report(lint::Code::kBoundViolationEnergy, "replayed energy", actual_energy,
           bounds.energy);
  return diagnostics;
}

std::string to_text(const ScenarioBounds& bounds) {
  std::ostringstream os;
  os << "  makespan          [" << format_fixed(bounds.makespan.lo, 6) << ", "
     << format_fixed(bounds.makespan.hi, 6) << "] s"
     << (bounds.monotonicity_floor ? "  (exact baseline floor)" : "") << '\n'
     << "  energy            [" << format_fixed(bounds.energy.lo, 6) << ", "
     << format_fixed(bounds.energy.hi, 6) << "] a.u.\n";
  if (bounds.normalized) {
    os << "  normalized time   [" << format_fixed(bounds.normalized_time.lo, 6)
       << ", " << format_fixed(bounds.normalized_time.hi, 6) << "]\n"
       << "  normalized energy ["
       << format_fixed(bounds.normalized_energy.lo, 6) << ", "
       << format_fixed(bounds.normalized_energy.hi, 6) << "]\n";
  }
  os << "  min avg power     " << format_fixed(bounds.min_average_power, 6)
     << " a.u./s (cap below this is statically infeasible)\n"
     << "  continuous floor  "
     << format_fixed(bounds.continuous_energy_floor, 6)
     << " (reference relaxation, not part of the interval)\n"
     << "  schedule          " << bounds.iterations << " iterations, "
     << bounds.switches << " gear switches\n";
  return os.str();
}

std::string to_json(const ScenarioBounds& bounds) {
  const auto interval = [](const Interval& i) {
    return "{\"lo\":" + format_roundtrip(i.lo) +
           ",\"hi\":" + format_roundtrip(i.hi) + "}";
  };
  std::ostringstream os;
  os << "{\"makespan\":" << interval(bounds.makespan)
     << ",\"energy\":" << interval(bounds.energy)
     << ",\"normalized\":" << (bounds.normalized ? "true" : "false");
  if (bounds.normalized)
    os << ",\"normalized_time\":" << interval(bounds.normalized_time)
       << ",\"normalized_energy\":" << interval(bounds.normalized_energy);
  os << ",\"min_average_power\":" << format_roundtrip(bounds.min_average_power)
     << ",\"continuous_energy_floor\":"
     << format_roundtrip(bounds.continuous_energy_floor)
     << ",\"monotonicity_floor\":"
     << (bounds.monotonicity_floor ? "true" : "false")
     << ",\"iterations\":" << bounds.iterations
     << ",\"switches\":" << bounds.switches << '}';
  return os.str();
}

}  // namespace bounds
}  // namespace pals
