#include "analysis/svg.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

const char* state_color(RankState state) {
  switch (state) {
    case RankState::kCompute: return "#2e9e4f";
    case RankState::kSend: return "#2b6fb3";
    case RankState::kRecv: return "#6db3e8";
    case RankState::kWait: return "#e8a33d";
    case RankState::kCollective: return "#8659b5";
    case RankState::kIdle: return "#d0d0d0";
  }
  return "#000000";
}

}  // namespace

std::string render_svg(const Timeline& timeline, const SvgOptions& options) {
  PALS_CHECK_MSG(options.width_px > 0 && options.lane_height_px > 0 &&
                     options.lane_gap_px >= 0,
                 "invalid SVG geometry");
  const Seconds span = timeline.makespan();
  PALS_CHECK_MSG(span > 0.0, "cannot render an empty timeline");

  const int label_width = 56;
  const int header = options.title.empty() ? 8 : 28;
  const int lane_stride = options.lane_height_px + options.lane_gap_px;
  const int legend_height = options.show_legend ? 28 : 0;
  const int total_width = label_width + options.width_px + 8;
  const int total_height =
      header + timeline.n_ranks() * lane_stride + legend_height + 8;
  const double x_scale = static_cast<double>(options.width_px) / span;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << total_width
      << "\" height=\"" << total_height << "\" font-family=\"monospace\" "
      << "font-size=\"10\">\n";
  if (!options.title.empty()) {
    svg << "  <text x=\"" << label_width << "\" y=\"16\" font-size=\"13\">"
        << options.title << "</text>\n";
  }
  for (Rank r = 0; r < timeline.n_ranks(); ++r) {
    const int y = header + r * lane_stride;
    svg << "  <text x=\"2\" y=\""
        << y + options.lane_height_px - 2 << "\">r" << r << "</text>\n";
    for (const StateInterval& iv : timeline.intervals(r)) {
      const double x = label_width + iv.begin * x_scale;
      const double w = iv.duration() * x_scale;
      if (w < 0.05) continue;  // sub-pixel slivers
      svg << "  <rect x=\"" << format_fixed(x, 2) << "\" y=\"" << y
          << "\" width=\"" << format_fixed(w, 2) << "\" height=\""
          << options.lane_height_px << "\" fill=\"" << state_color(iv.state)
          << "\"><title>rank " << r << ' ' << to_string(iv.state) << " ["
          << format_fixed(iv.begin * 1e3, 3) << ", "
          << format_fixed(iv.end * 1e3, 3) << "] ms</title></rect>\n";
    }
  }
  if (options.show_legend) {
    int x = label_width;
    const int y = header + timeline.n_ranks() * lane_stride + 8;
    for (const RankState state :
         {RankState::kCompute, RankState::kSend, RankState::kRecv,
          RankState::kWait, RankState::kCollective, RankState::kIdle}) {
      svg << "  <rect x=\"" << x << "\" y=\"" << y
          << "\" width=\"10\" height=\"10\" fill=\"" << state_color(state)
          << "\"/>\n  <text x=\"" << x + 14 << "\" y=\"" << y + 9 << "\">"
          << to_string(state) << "</text>\n";
      x += 14 + 10 * static_cast<int>(to_string(state).size()) + 16;
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

void write_svg_file(const Timeline& timeline, const std::string& path,
                    const SvgOptions& options) {
  atomic_write_file(path, render_svg(timeline, options));
}

}  // namespace pals
