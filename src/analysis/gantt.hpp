// ASCII Gantt rendering of rank timelines (the paper's Figure 1 view).
#pragma once

#include <string>

#include "trace/timeline.hpp"

namespace pals {

struct GanttOptions {
  int width = 100;          ///< characters per rank row
  bool show_legend = true;
  /// Render at most this many ranks (evenly sampled); 0 = all.
  Rank max_ranks = 0;
};

/// One character per time cell: '#' compute, '<' send, '>' recv, 'w' wait,
/// '*' collective, '.' idle. The state covering the majority of a cell
/// wins.
std::string render_gantt(const Timeline& timeline,
                         const GanttOptions& options = {});

}  // namespace pals
