#include "analysis/comm_stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace pals {
namespace {

std::size_t size_bucket(Bytes bytes) {
  if (bytes <= 1) return 0;
  return static_cast<std::size_t>(
      std::floor(std::log2(static_cast<double>(bytes))));
}

}  // namespace

Bytes CommStats::total_p2p_bytes() const {
  return std::accumulate(bytes.begin(), bytes.end(), Bytes{0});
}

std::uint64_t CommStats::total_messages() const {
  return std::accumulate(messages.begin(), messages.end(),
                         std::uint64_t{0});
}

Bytes CommStats::bytes_between(Rank src, Rank dst) const {
  PALS_CHECK_MSG(src >= 0 && src < n_ranks && dst >= 0 && dst < n_ranks,
                 "rank out of range");
  return bytes[static_cast<std::size_t>(src) *
                   static_cast<std::size_t>(n_ranks) +
               static_cast<std::size_t>(dst)];
}

double CommStats::channel_concentration() const {
  double total = 0.0;
  std::size_t senders = 0;
  for (Rank src = 0; src < n_ranks; ++src) {
    Bytes row_total = 0;
    Bytes row_max = 0;
    for (Rank dst = 0; dst < n_ranks; ++dst) {
      const Bytes b = bytes_between(src, dst);
      row_total += b;
      row_max = std::max(row_max, b);
    }
    if (row_total == 0) continue;
    total += static_cast<double>(row_max) / static_cast<double>(row_total);
    ++senders;
  }
  return senders == 0 ? 0.0 : total / static_cast<double>(senders);
}

std::string CommStats::render_matrix(Rank max_ranks) const {
  PALS_CHECK_MSG(max_ranks > 0, "need at least one matrix bucket");
  const Rank groups = std::min(max_ranks, n_ranks);
  std::vector<double> grouped(
      static_cast<std::size_t>(groups) * static_cast<std::size_t>(groups),
      0.0);
  for (Rank src = 0; src < n_ranks; ++src) {
    for (Rank dst = 0; dst < n_ranks; ++dst) {
      const auto gs = static_cast<std::size_t>(
          static_cast<long long>(src) * groups / n_ranks);
      const auto gd = static_cast<std::size_t>(
          static_cast<long long>(dst) * groups / n_ranks);
      grouped[gs * static_cast<std::size_t>(groups) + gd] +=
          static_cast<double>(bytes_between(src, dst));
    }
  }
  const double peak = *std::max_element(grouped.begin(), grouped.end());
  std::ostringstream os;
  os << "src\\dst ";
  for (Rank g = 0; g < groups; ++g) os << g % 10;
  os << '\n';
  for (Rank gs = 0; gs < groups; ++gs) {
    os << "  " << gs << (gs < 10 ? "     " : "    ");
    for (Rank gd = 0; gd < groups; ++gd) {
      const double v =
          grouped[static_cast<std::size_t>(gs) *
                      static_cast<std::size_t>(groups) +
                  static_cast<std::size_t>(gd)];
      if (peak <= 0.0 || v <= 0.0) {
        os << '.';
      } else {
        os << std::min(9, static_cast<int>(v / peak * 9.0 + 0.999));
      }
    }
    os << '\n';
  }
  return os.str();
}

CommStats analyze_communication(const Trace& trace) {
  CommStats stats;
  stats.n_ranks = trace.n_ranks();
  const auto n = static_cast<std::size_t>(trace.n_ranks());
  stats.bytes.assign(n * n, 0);
  stats.messages.assign(n * n, 0);
  stats.size_histogram.assign(64, 0);
  stats.collective_bytes.assign(n, 0);

  for (Rank r = 0; r < trace.n_ranks(); ++r) {
    for (const Event& e : trace.events(r)) {
      Rank peer = -1;
      Bytes payload = 0;
      if (const auto* s = std::get_if<SendEvent>(&e)) {
        peer = s->peer;
        payload = s->bytes;
      } else if (const auto* is = std::get_if<IsendEvent>(&e)) {
        peer = is->peer;
        payload = is->bytes;
      } else if (const auto* c = std::get_if<CollectiveEvent>(&e)) {
        stats.collective_bytes[static_cast<std::size_t>(r)] += c->bytes;
        continue;
      } else {
        continue;
      }
      const std::size_t index =
          static_cast<std::size_t>(r) * n + static_cast<std::size_t>(peer);
      stats.bytes[index] += payload;
      ++stats.messages[index];
      ++stats.size_histogram[size_bucket(payload)];
    }
  }
  return stats;
}

}  // namespace pals
