// Golden-schedule rendering for the controller regression tests.
//
// Every built-in controller (core/controllers.hpp) is run over one
// iteration-marked trace under the paper-default pipeline configuration,
// and the per-iteration gear schedules are rendered with
// schedules_to_csv. tools/update_golden pins the result for the committed
// rotating-hotspot fixture (tests/power/fixtures/drift4.palst) as
// golden/controller_schedules.csv; tests/power/controller_test.cpp
// requires a fresh rendering to match it byte-for-byte, so any change to
// a controller's decisions shows up as a reviewable schedule diff.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace pals {

/// CSV of every built-in controller's per-iteration gear schedule on
/// `trace` (uniform-6 gear set, MAX scenario algorithm, paper defaults).
std::string controller_schedules_csv(const Trace& trace);

}  // namespace pals
