// Critical-path extraction from a replayed execution.
//
// The makespan is determined by a chain of activities: the last-finishing
// rank's final computation, the message or collective that released it,
// the sender's computation before that, and so on back to t = 0. This
// module reconstructs that chain from the replay's timeline plus its
// message/collective records and reports where the critical time is
// spent — the complement of the slack the MAX/AVG algorithms harvest
// (DVFS must never slow a rank while it is *on* this path).
#pragma once

#include <string>
#include <vector>

#include "replay/replay.hpp"

namespace pals {

enum class PathActivity {
  kCompute,     ///< the critical rank was computing
  kTransfer,    ///< waiting on an in-flight message (network time)
  kCollective,  ///< collective cost after the last arrival
  kOverhead,    ///< sender-side send overhead and other busy comm time
};

std::string to_string(PathActivity activity);

struct PathSegment {
  Rank rank = -1;  ///< -1 for pure network (transfer) segments
  Seconds begin = 0.0;
  Seconds end = 0.0;
  PathActivity activity = PathActivity::kCompute;

  Seconds duration() const { return end - begin; }
};

struct CriticalPath {
  /// Chronological segments covering (approximately) [0, makespan].
  std::vector<PathSegment> segments;
  /// Seconds each rank spends on the path (compute + overhead).
  std::vector<Seconds> rank_share;
  /// Fraction of the path spent computing.
  double compute_fraction = 0.0;
  /// Fraction spent in transfers + collective costs (network-bound time).
  double network_fraction = 0.0;
  /// Number of times the path hops between ranks.
  std::size_t rank_switches = 0;

  Seconds total() const;
};

/// Walk the wait-for chain backwards from the last-finishing rank.
/// Wait attribution uses the replay's message records (delivery matched
/// by timestamp) and collective records (last arrival), so the input must
/// come from `replay()` unmodified.
CriticalPath critical_path(const ReplayResult& result);

/// One-line-per-segment rendering for reports.
std::string render_critical_path(const CriticalPath& path,
                                 std::size_t max_segments = 40);

}  // namespace pals
