// SVG rendering of rank timelines — a publication-quality counterpart to
// the ASCII Gantt (Figure 1), viewable in any browser.
#pragma once

#include <string>

#include "trace/timeline.hpp"

namespace pals {

struct SvgOptions {
  int width_px = 1000;      ///< drawing width of the time axis
  int lane_height_px = 12;  ///< height of one rank's lane
  int lane_gap_px = 2;
  bool show_legend = true;
  std::string title;
};

/// Render the timeline as a standalone SVG document. States are colored
/// (compute green, send/recv blues, wait amber, collective purple, idle
/// grey); hovering an interval shows its state and time span.
std::string render_svg(const Timeline& timeline,
                       const SvgOptions& options = {});

/// Convenience: write render_svg() output to `path`.
void write_svg_file(const Timeline& timeline, const std::string& path,
                    const SvgOptions& options = {});

}  // namespace pals
