// Experiment-runner helpers shared by the bench binaries.
//
// Every figure/table in the paper is a sweep of run_pipeline over the
// benchmark set with one knob varied. These helpers build configurations,
// run sweeps (with trace caching per instance) and format result rows.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "workloads/registry.hpp"

namespace pals {

/// Pipeline configuration with the paper's default parameters:
/// MAX algorithm, beta 0.5, static fraction 0.2, activity ratio 1.5,
/// reference gear (2.3 GHz, 1.5 V), default platform model.
PipelineConfig default_pipeline_config(const GearSet& gear_set,
                                       Algorithm algorithm = Algorithm::kMax);

/// Set beta consistently in both the algorithm and the power model.
void set_beta(PipelineConfig& config, double beta);

/// Overlay a key = value config file (util/kvconfig.hpp) onto a pipeline
/// configuration. Recognized keys: latency, bandwidth, eager_threshold,
/// buses, collective_scale, beta, static_fraction, activity_ratio.
/// Unknown keys throw (typo detection).
void apply_config_file(PipelineConfig& config, const std::string& path);

/// A resolved workload: cache key, display name and trace builder.
struct WorkloadRef {
  std::string key;
  std::string display;
  std::function<Trace()> build;
};

/// Resolve a registry instance name ("CG-32") or an inline spec
/// "family:ranks:lb[:iterations]" (e.g. "lu:32:0.93:6") to a WorkloadRef.
/// Specs without an iteration count use `default_iterations`; the cache
/// key always carries the resolved count so grids with different defaults
/// never collide. Throws pals::Error on unknown names or malformed specs.
WorkloadRef resolve_workload(const std::string& spec, int default_iterations);

/// One measured row of an experiment.
struct ExperimentRow {
  std::string instance;     ///< e.g. "CG-32"
  std::string variant;      ///< e.g. gear-set label or parameter value
  double load_balance = 0.0;
  double parallel_efficiency = 0.0;
  double normalized_energy = 0.0;
  double normalized_time = 0.0;
  double normalized_edp = 0.0;
  double overclocked_fraction = 0.0;
};

/// Flatten a pipeline result into a row. run_experiment composes
/// run_pipeline with this; the sweep engine calls the two pieces itself
/// so the raw scaled time/energy can also feed the bounds soundness
/// oracle (analysis/bounds.hpp) before the result is flattened.
ExperimentRow flatten_result(const PipelineResult& result,
                             const std::string& instance,
                             const std::string& variant);

/// Runs `config` on a prebuilt trace and flattens the result.
ExperimentRow run_experiment(const Trace& trace, const std::string& instance,
                             const std::string& variant,
                             const PipelineConfig& config);

/// Same, but reuse a precomputed baseline replay (see the matching
/// run_pipeline overload); the sweep engine computes it once per workload.
ExperimentRow run_experiment(const Trace& trace, const ReplayResult& baseline,
                             const std::string& instance,
                             const std::string& variant,
                             const PipelineConfig& config);

/// Caches generated traces by instance name so multi-variant sweeps build
/// each workload once. Thread-safe: the sweep engine shares one cache
/// across workers (std::map never invalidates references, so the returned
/// Trace& stays valid while the cache lives).
class TraceCache {
public:
  const Trace& get(const BenchmarkInstance& instance);
  /// Generic keyed access for non-registry workloads: builds (under the
  /// cache lock) and memoizes `build()` on first use of `key`.
  const Trace& get(const std::string& key,
                   const std::function<Trace()>& build);

private:
  std::mutex mutex_;
  std::map<std::string, Trace> traces_;
};

/// Render rows as an aligned table (one line per row) to stdout and, when
/// `csv_path` is non-empty, as CSV.
void print_rows(const std::vector<ExperimentRow>& rows,
                const std::string& title, const std::string& csv_path = "");

/// The exact CSV emitted by print_rows, as a string. The formatting is
/// shared so sweep outputs can be compared byte-for-byte across thread
/// counts.
std::string rows_to_csv(const std::vector<ExperimentRow>& rows);

/// Write rows_to_csv(rows) to `path` (throws on I/O failure).
void write_rows_csv(const std::vector<ExperimentRow>& rows,
                    const std::string& path);

}  // namespace pals
