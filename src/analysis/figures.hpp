// The paper's figures as library functions.
//
// Each function runs one figure's sweep over the benchmark set and
// returns the rows the paper plots. The bench binaries are thin wrappers
// around these; tools/pals_reproduce chains them all into one report.
#pragma once

#include <string>
#include <vector>

#include "analysis/experiments.hpp"

namespace pals {

/// Table 3: LB/PE characterization of every instance (variant column
/// holds the paper's value for comparison).
std::vector<ExperimentRow> table3_rows(TraceCache& cache, int iterations = 10);

/// Figure 2: energy/EDP vs gear-set size (continuous sets + uniform
/// 2..15) over the paper's five-instance subset. Runs on the parallel
/// sweep engine; `jobs` is the worker count (1 = serial, 0 = hardware
/// concurrency). Results are identical for every jobs value.
std::vector<ExperimentRow> figure2_rows(TraceCache& cache, int jobs = 1);

/// Figure 3: energy vs load balance for unlimited/2-gear/6-gear sets,
/// sorted by load balance.
std::vector<ExperimentRow> figure3_rows(TraceCache& cache);

/// Figure 4: exponential sets with 3..7 gears.
std::vector<ExperimentRow> figure4_rows(TraceCache& cache);

/// Figure 5: beta swept 0.3..1.0 (uniform-6).
std::vector<ExperimentRow> figure5_rows(TraceCache& cache);

/// Figure 6: static power fraction swept 0..90 % (uniform-6).
std::vector<ExperimentRow> figure6_rows(TraceCache& cache);

/// Figure 7: activity-factor ratio swept 1.5..3.0 (uniform-6).
std::vector<ExperimentRow> figure7_rows(TraceCache& cache);

/// Figure 8: AVG with the limited continuous set at +10 %/+20 % OC.
std::vector<ExperimentRow> figure8_rows(TraceCache& cache);

/// Figure 9: AVG with uniform-6 + (2.6 GHz, 1.6 V).
std::vector<ExperimentRow> figure9_rows(TraceCache& cache);

/// Figure 10: MAX vs AVG side by side. Runs on the parallel sweep engine
/// (see figure2_rows for the `jobs` semantics).
std::vector<ExperimentRow> figure10_rows(TraceCache& cache, int jobs = 1);

/// Render rows as a GitHub-flavoured Markdown table.
std::string rows_to_markdown(const std::vector<ExperimentRow>& rows);

}  // namespace pals
