#include "analysis/profile.hpp"

#include <algorithm>
#include <chrono>

#include "obs/record.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

std::uint64_t counter_delta(const obs::MetricsSnapshot& before,
                            const obs::MetricsSnapshot& after,
                            std::string_view name) {
  return after.value_of(name) - before.value_of(name);
}

/// Pull the "span.<phase>.{count,wall_ns}" deltas out of two snapshots.
std::vector<PhaseProfile> phase_deltas(const obs::MetricsSnapshot& before,
                                       const obs::MetricsSnapshot& after) {
  std::vector<PhaseProfile> phases;
  constexpr std::string_view kPrefix = "span.";
  constexpr std::string_view kSuffix = ".wall_ns";
  for (const obs::MetricValue& m : after.metrics) {
    if (!starts_with(m.name, kPrefix) || !ends_with(m.name, kSuffix)) continue;
    const std::string name = m.name.substr(
        kPrefix.size(), m.name.size() - kPrefix.size() - kSuffix.size());
    PhaseProfile phase;
    phase.name = name;
    phase.count = counter_delta(before, after, "span." + name + ".count");
    phase.seconds =
        static_cast<double>(counter_delta(before, after, m.name)) / 1e9;
    if (phase.count > 0) phases.push_back(std::move(phase));
  }
  // after.metrics is key-sorted, so phases already are; keep it explicit.
  std::sort(phases.begin(), phases.end(),
            [](const PhaseProfile& a, const PhaseProfile& b) {
              return a.name < b.name;
            });
  return phases;
}

}  // namespace

std::string ProfileReport::bench_json() const {
  std::string out = "{\n";
  out += "  \"benchmark\": \"replay_pipeline\",\n";
  out += "  \"pipelines\": " + std::to_string(pipelines) + ",\n";
  out += "  \"replays\": " + std::to_string(replays) + ",\n";
  out += "  \"simulated_events\": " + std::to_string(simulated_events) + ",\n";
  out += "  \"jobs\": " + std::to_string(jobs) + ",\n";
  out += "  \"wall_seconds\": " + format_fixed(wall_seconds, 6) + ",\n";
  out += "  \"scenarios_per_second\": " + format_fixed(pipelines_per_second, 6) +
         ",\n";
  out += "  \"pipelines_per_second\": " + format_fixed(pipelines_per_second, 6) +
         ",\n";
  out += "  \"events_per_second\": " + format_fixed(events_per_second, 6) +
         ",\n";
  out += "  \"phases\": {";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + json_escape(phases[i].name) +
           "\": {\"count\": " + std::to_string(phases[i].count) +
           ", \"seconds\": " + format_fixed(phases[i].seconds, 6) + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

ProfileReport profile_pipeline(const Trace& trace,
                               const ProfileOptions& options) {
  PALS_CHECK_MSG(options.repeat > 0, "profile repeat must be > 0");
  ProfileOptions resolved = options;
  resolved.config.observe = true;
  resolved.config.validate();

  obs::Registry& reg = obs::default_registry();
  const obs::MetricsSnapshot before = reg.snapshot();

  ThreadPool pool(options.jobs);
  const auto repeat = static_cast<std::size_t>(options.repeat);
  std::vector<PipelineResult> first(1);
  const auto start = std::chrono::steady_clock::now();
  pool.parallel_for(repeat, [&](std::size_t i) {
    PipelineResult result = run_pipeline(trace, resolved.config);
    if (i == 0) first[0] = std::move(result);
  });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  obs::record_thread_pool(pool.stats(), reg);
  obs::record_trace_io(reg);
  const obs::MetricsSnapshot after = reg.snapshot();

  ProfileReport report;
  report.pipelines = repeat;
  report.replays = counter_delta(before, after, "replay.runs");
  report.simulated_events = counter_delta(before, after, "replay.events");
  report.jobs = pool.size();
  report.wall_seconds = wall;
  if (wall > 0.0) {
    report.pipelines_per_second = static_cast<double>(repeat) / wall;
    report.events_per_second =
        static_cast<double>(report.simulated_events) / wall;
  }
  report.phases = phase_deltas(before, after);
  report.pool = pool.stats();
  report.result = std::move(first[0]);
  return report;
}

}  // namespace pals
