// Golden-result regression harness.
//
// Experiment outputs are numeric and model-derived: a refactor that
// changes them silently is a correctness bug, not noise. Sweeps can be
// saved as CSV (analysis/experiments.hpp writes them), reloaded, and
// compared row-by-row with a relative tolerance; the repository pins the
// key paper results under golden/ and the integration tests diff fresh
// runs against them.
#pragma once

#include <string>
#include <vector>

#include "analysis/experiments.hpp"

namespace pals {

/// Load rows from a CSV produced by print_rows(). Throws on malformed
/// input or unknown headers.
std::vector<ExperimentRow> load_rows_csv(const std::string& path);

/// Write rows in the same CSV schema (no console table).
void save_rows_csv(const std::vector<ExperimentRow>& rows,
                   const std::string& path);

struct RowDifference {
  std::string instance;
  std::string variant;
  std::string field;
  double expected = 0.0;
  double actual = 0.0;
};

/// Compare two row sets matched by (instance, variant). Numeric fields
/// must agree within `tolerance` (absolute, on the 0..1 normalized
/// scales). Rows present in only one set are reported with field
/// "missing"/"unexpected". Order does not matter.
std::vector<RowDifference> compare_rows(
    const std::vector<ExperimentRow>& expected,
    const std::vector<ExperimentRow>& actual, double tolerance);

/// Human-readable summary of differences ("" when empty).
std::string describe_differences(const std::vector<RowDifference>& diffs,
                                 std::size_t max_lines = 20);

}  // namespace pals
