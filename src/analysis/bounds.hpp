// Static bounds analyzer (pals::bounds).
//
// Abstract-interprets a Trace + platform + gear assignment (or online
// controller) *without running a replay* and emits guaranteed intervals on
// the scaled run's makespan and CPU energy:
//
//  * The DVFS schedule itself is reconstructed exactly: the one-shot
//    assigners and every online controller are pure functions of the seed
//    profile and the observation sequence, and the observation sequence the
//    controller pipeline feeds them (per-iteration trace compute × the β
//    time model) is itself static. The analyzer replays that decision loop
//    — gear switches, transition stalls and transition energy included —
//    without touching the DES.
//  * Makespan lower bound: a collective-segment critical path. Replay
//    resumes every rank at a collective's completion time, so slot k can
//    not complete before slot k-1's completion plus the slowest rank's
//    compute between the two plus the slot's cost; summing slots (plus the
//    tail segment) bounds the makespan from below. When the platform is
//    contention-free, the run is fault-free and no gear runs above the
//    reference frequency, the baseline makespan is an additional exact
//    floor (scaling compute up can only delay a max-plus DES).
//  * Makespan upper bound: full serialization. Total scaled compute of all
//    ranks + every p2p message fully serialized (2·latency + transfer) +
//    every collective slot's cost. Sound because a deadlock-free replay
//    always has at least one rank computing or one message/collective in
//    flight, and each such activity consumes its own budget exactly once.
//  * Energy: compute intervals are charged exactly (the schedule fixes
//    their gear and duration); non-compute time per rank is the makespan
//    minus its compute, charged at the sharpest idle-power range the
//    rank's scheduled gears admit. Transition energy is exact.
//
// Final intervals are widened by a tiny relative epsilon to absorb
// floating-point accumulation-order differences against the replay; the
// baseline-makespan floor is exact (FP max/+/x are monotone) and is NOT
// widened, which is what lets the sweep pruner dominate cells whose time
// lower bound ties the baseline exactly.
//
// Consumers: pals_sweep --prune-bounds (branch-and-bound cell pruning),
// the post-replay soundness oracle (check_soundness → lint diagnostics),
// and the pals_lint --bounds / pals_check reporting surface. docs/bounds.md
// has the full contract.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "lint/diagnostic.hpp"
#include "replay/replay.hpp"
#include "trace/trace.hpp"

namespace pals {
namespace bounds {

/// Closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool contains(double value) const { return value >= lo && value <= hi; }
  double width() const { return hi - lo; }
};

struct ScenarioBounds {
  /// Guaranteed interval on the scaled replay's makespan (seconds).
  Interval makespan;
  /// Guaranteed interval on scaled CPU energy incl. transition energy.
  Interval energy;

  /// makespan / baseline makespan and energy / baseline energy — only
  /// meaningful when analyze() was given the baseline replay.
  Interval normalized_time;
  Interval normalized_energy;
  bool normalized = false;

  /// Rountree-style continuous relaxation (core/bound.hpp) at the slowdown
  /// this scenario's upper time bound admits, over the gear set's
  /// frequency range. A reference floor for gap reporting, not part of the
  /// soundness contract (it assumes per-rank constant frequencies).
  double continuous_energy_floor = 0.0;

  /// Provable floor on the run's time-average total CPU power
  /// (energy-units/s) over every execution consistent with the intervals.
  /// A power cap below this value is statically infeasible.
  double min_average_power = 0.0;

  /// True when the lower time bound includes the exact baseline-makespan
  /// floor (contention-free platform, no faults, no over-clocked gear).
  bool monotonicity_floor = false;

  /// Reconstructed schedule facts (0 iterations = static one-shot path).
  std::size_t iterations = 0;
  std::size_t switches = 0;
};

/// Analyze one scenario statically. `baseline` (the reference-frequency
/// replay of `trace` under config.replay) is optional: with it the
/// analyzer seeds assigners from the exact replay compute profile, arms
/// the baseline-makespan floor and fills the normalized intervals; without
/// it the seed comes from the trace's compute sums (the pure
/// pre-replay surface used by pals_lint --bounds / pals_check).
///
/// The intervals describe the *fault-free* scaled replay; with a fault
/// plan injected only gear_stuck pinning is modeled (callers disarm the
/// oracle and the pruner whenever any fault plan is attached). Throws on
/// per-phase configs (no single schedule to bound).
ScenarioBounds analyze(const Trace& trace, const PipelineConfig& config,
                       const ReplayResult* baseline = nullptr);

/// Indented multi-line rendering of the intervals for the pals_lint
/// --bounds / pals_check text surface (every line starts with two spaces
/// and ends with '\n').
std::string to_text(const ScenarioBounds& bounds);

/// Deterministic single-line JSON object with round-trip number
/// formatting; the normalized interval members appear only when
/// `normalized` is true.
std::string to_json(const ScenarioBounds& bounds);

/// The soundness-oracle contract: every replayed scenario must land inside
/// its static intervals. Returns one kBoundViolationTime /
/// kBoundViolationEnergy diagnostic per escaped metric (empty = sound)
/// and bumps the lint.diag.* counters like lint_trace does — an escape is
/// a bug in the simulator, the power model or the analyzer itself.
std::vector<lint::Diagnostic> check_soundness(const ScenarioBounds& bounds,
                                              Seconds actual_makespan,
                                              double actual_energy);

}  // namespace bounds
}  // namespace pals
