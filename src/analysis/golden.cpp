#include "analysis/golden.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

constexpr const char* kHeader =
    "instance,variant,load_balance,parallel_efficiency,normalized_energy,"
    "normalized_time,normalized_edp,overclocked_fraction";

using RowKey = std::pair<std::string, std::string>;

RowKey key_of(const ExperimentRow& row) {
  return {row.instance, row.variant};
}

}  // namespace

std::vector<ExperimentRow> load_rows_csv(const std::string& path) {
  std::ifstream in(path);
  PALS_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  std::string line;
  PALS_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                 "empty results csv '" << path << "'");
  PALS_CHECK_MSG(trim(line) == kHeader,
                 "unexpected results csv header in '" << path << "'");
  std::vector<ExperimentRow> rows;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    const auto fields = parse_csv_line(std::string(trim(line)));
    PALS_CHECK_MSG(fields.size() == 8, "results csv line "
                                           << line_no << ": expected 8 "
                                           << "fields, got "
                                           << fields.size());
    ExperimentRow row;
    row.instance = fields[0];
    row.variant = fields[1];
    row.load_balance = parse_double(fields[2]);
    row.parallel_efficiency = parse_double(fields[3]);
    row.normalized_energy = parse_double(fields[4]);
    row.normalized_time = parse_double(fields[5]);
    row.normalized_edp = parse_double(fields[6]);
    row.overclocked_fraction = parse_double(fields[7]);
    rows.push_back(std::move(row));
  }
  return rows;
}

void save_rows_csv(const std::vector<ExperimentRow>& rows,
                   const std::string& path) {
  write_rows_csv(rows, path);
}

std::vector<RowDifference> compare_rows(
    const std::vector<ExperimentRow>& expected,
    const std::vector<ExperimentRow>& actual, double tolerance) {
  PALS_CHECK_MSG(tolerance >= 0.0, "negative tolerance");
  std::map<RowKey, const ExperimentRow*> actual_by_key;
  for (const ExperimentRow& row : actual) {
    PALS_CHECK_MSG(actual_by_key.emplace(key_of(row), &row).second,
                   "duplicate row (" << row.instance << ", " << row.variant
                                     << ") in actual results");
  }
  std::vector<RowDifference> diffs;
  const auto check = [&](const ExperimentRow& e, const ExperimentRow& a,
                         const char* field, double ev, double av) {
    if (std::abs(ev - av) > tolerance)
      diffs.push_back({e.instance, e.variant, field, ev, av});
  };
  std::map<RowKey, bool> seen;
  for (const ExperimentRow& e : expected) {
    seen[key_of(e)] = true;
    const auto it = actual_by_key.find(key_of(e));
    if (it == actual_by_key.end()) {
      diffs.push_back({e.instance, e.variant, "missing", 0.0, 0.0});
      continue;
    }
    const ExperimentRow& a = *it->second;
    check(e, a, "load_balance", e.load_balance, a.load_balance);
    check(e, a, "parallel_efficiency", e.parallel_efficiency,
          a.parallel_efficiency);
    check(e, a, "normalized_energy", e.normalized_energy,
          a.normalized_energy);
    check(e, a, "normalized_time", e.normalized_time, a.normalized_time);
    check(e, a, "normalized_edp", e.normalized_edp, a.normalized_edp);
    check(e, a, "overclocked_fraction", e.overclocked_fraction,
          a.overclocked_fraction);
  }
  for (const ExperimentRow& a : actual) {
    if (!seen.count(key_of(a)))
      diffs.push_back({a.instance, a.variant, "unexpected", 0.0, 0.0});
  }
  return diffs;
}

std::string describe_differences(const std::vector<RowDifference>& diffs,
                                 std::size_t max_lines) {
  if (diffs.empty()) return "";
  std::ostringstream os;
  os << diffs.size() << " difference(s):\n";
  const std::size_t n = std::min(max_lines, diffs.size());
  for (std::size_t i = 0; i < n; ++i) {
    const RowDifference& d = diffs[i];
    os << "  (" << d.instance << ", " << d.variant << ") " << d.field;
    if (d.field != "missing" && d.field != "unexpected")
      os << ": expected " << format_fixed(d.expected, 4) << ", got "
         << format_fixed(d.actual, 4);
    os << '\n';
  }
  if (diffs.size() > n) os << "  ... " << diffs.size() - n << " more\n";
  return os.str();
}

}  // namespace pals
