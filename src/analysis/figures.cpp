#include "analysis/figures.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/sweep.hpp"
#include "replay/replay.hpp"
#include "util/strings.hpp"

namespace pals {

std::vector<ExperimentRow> table3_rows(TraceCache& cache, int iterations) {
  std::vector<ExperimentRow> rows;
  for (const BenchmarkInstance& inst : paper_benchmarks(iterations)) {
    const Trace& trace = cache.get(inst);
    const ReplayResult r = replay(trace, ReplayConfig{});
    ExperimentRow row;
    row.instance = inst.name;
    row.variant = "paper LB " + format_percent(inst.paper_lb) + ", PE " +
                  format_percent(inst.paper_pe);
    row.load_balance = load_balance(r.compute_time);
    row.parallel_efficiency =
        parallel_efficiency(r.compute_time, r.makespan);
    row.normalized_energy = 1.0;
    row.normalized_time = 1.0;
    row.normalized_edp = 1.0;
    rows.push_back(row);
  }
  return rows;
}

std::vector<ExperimentRow> figure2_rows(TraceCache& cache, int jobs) {
  std::vector<Scenario> scenarios;
  for (const BenchmarkInstance& inst : figure2_benchmarks()) {
    const auto measure = [&](const std::string& set) {
      scenarios.push_back(Scenario{inst.name, set, Algorithm::kMax, 0.5, ""});
    };
    measure("continuous-unlimited");
    measure("continuous-limited");
    for (int gears = 2; gears <= 15; ++gears)
      measure("uniform-" + std::to_string(gears));
  }
  SweepOptions options;
  options.jobs = jobs;
  options.trace_cache = &cache;
  return run_sweep(scenarios, options).rows;
}

std::vector<ExperimentRow> figure3_rows(TraceCache& cache) {
  std::vector<ExperimentRow> rows;
  for (const BenchmarkInstance& inst : paper_benchmarks()) {
    const Trace& trace = cache.get(inst);
    rows.push_back(run_experiment(
        trace, inst.name, "continuous-unlimited",
        default_pipeline_config(paper_unlimited_continuous())));
    rows.push_back(run_experiment(trace, inst.name, "uniform-2",
                                  default_pipeline_config(paper_uniform(2))));
    rows.push_back(run_experiment(trace, inst.name, "uniform-6",
                                  default_pipeline_config(paper_uniform(6))));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const ExperimentRow& a, const ExperimentRow& b) {
                     return a.load_balance < b.load_balance;
                   });
  return rows;
}

std::vector<ExperimentRow> figure4_rows(TraceCache& cache) {
  std::vector<ExperimentRow> rows;
  for (const BenchmarkInstance& inst : paper_benchmarks()) {
    const Trace& trace = cache.get(inst);
    for (int gears = 3; gears <= 7; ++gears) {
      rows.push_back(
          run_experiment(trace, inst.name,
                         "exponential-" + std::to_string(gears),
                         default_pipeline_config(paper_exponential(gears))));
    }
  }
  return rows;
}

std::vector<ExperimentRow> figure5_rows(TraceCache& cache) {
  std::vector<ExperimentRow> rows;
  for (const BenchmarkInstance& inst : paper_benchmarks()) {
    const Trace& trace = cache.get(inst);
    for (const double beta : {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
      PipelineConfig config = default_pipeline_config(paper_uniform(6));
      set_beta(config, beta);
      rows.push_back(run_experiment(trace, inst.name,
                                    "beta=" + format_fixed(beta, 1), config));
    }
  }
  return rows;
}

std::vector<ExperimentRow> figure6_rows(TraceCache& cache) {
  std::vector<ExperimentRow> rows;
  for (const BenchmarkInstance& inst : paper_benchmarks()) {
    const Trace& trace = cache.get(inst);
    for (int percent = 0; percent <= 90; percent += 10) {
      PipelineConfig config = default_pipeline_config(paper_uniform(6));
      config.power.static_fraction = percent / 100.0;
      rows.push_back(run_experiment(
          trace, inst.name, "static=" + std::to_string(percent) + "%",
          config));
    }
  }
  return rows;
}

std::vector<ExperimentRow> figure7_rows(TraceCache& cache) {
  std::vector<ExperimentRow> rows;
  for (const BenchmarkInstance& inst : paper_benchmarks()) {
    const Trace& trace = cache.get(inst);
    for (const double ratio : {1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0}) {
      PipelineConfig config = default_pipeline_config(paper_uniform(6));
      config.power.activity_ratio = ratio;
      rows.push_back(run_experiment(
          trace, inst.name, "ratio=" + format_fixed(ratio, 2), config));
    }
  }
  return rows;
}

std::vector<ExperimentRow> figure8_rows(TraceCache& cache) {
  std::vector<ExperimentRow> rows;
  for (const BenchmarkInstance& inst : paper_benchmarks()) {
    const Trace& trace = cache.get(inst);
    for (const double oc : {1.1, 1.2}) {
      const GearSet set = paper_limited_continuous().with_fmax_scaled(oc);
      rows.push_back(run_experiment(
          trace, inst.name,
          "overclock+" +
              std::to_string(static_cast<int>((oc - 1.0) * 100.0 + 0.5)) +
              "%",
          default_pipeline_config(set, Algorithm::kAvg)));
    }
  }
  return rows;
}

std::vector<ExperimentRow> figure9_rows(TraceCache& cache) {
  std::vector<ExperimentRow> rows;
  for (const BenchmarkInstance& inst : paper_benchmarks()) {
    const Trace& trace = cache.get(inst);
    rows.push_back(run_experiment(
        trace, inst.name, "uniform-6+2.6GHz",
        default_pipeline_config(paper_avg_discrete(), Algorithm::kAvg)));
  }
  return rows;
}

std::vector<ExperimentRow> figure10_rows(TraceCache& cache, int jobs) {
  std::vector<Scenario> scenarios;
  for (const BenchmarkInstance& inst : paper_benchmarks()) {
    scenarios.push_back(Scenario{inst.name, "uniform-6", Algorithm::kMax, 0.5,
                                 "MAX uniform-6"});
    scenarios.push_back(Scenario{inst.name, "avg-discrete", Algorithm::kAvg,
                                 0.5, "AVG uniform-6+2.6GHz"});
  }
  SweepOptions options;
  options.jobs = jobs;
  options.trace_cache = &cache;
  return run_sweep(scenarios, options).rows;
}

std::string rows_to_markdown(const std::vector<ExperimentRow>& rows) {
  std::ostringstream os;
  os << "| instance | variant | LB | PE | energy | time | EDP | "
        "overclocked |\n"
     << "|---|---|---|---|---|---|---|---|\n";
  for (const ExperimentRow& r : rows) {
    os << "| " << r.instance << " | " << r.variant << " | "
       << format_percent(r.load_balance) << " | "
       << format_percent(r.parallel_efficiency) << " | "
       << format_percent(r.normalized_energy) << " | "
       << format_percent(r.normalized_time) << " | "
       << format_percent(r.normalized_edp) << " | "
       << format_percent(r.overclocked_fraction) << " |\n";
  }
  return os.str();
}

}  // namespace pals
