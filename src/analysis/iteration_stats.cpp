#include "analysis/iteration_stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/pipeline.hpp"
#include "trace/transform.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace pals {

bool IterationStats::static_assignment_sufficient(double tolerance) const {
  return drift_index <= tolerance &&
         total_load_balance <= mean_iteration_load_balance + tolerance;
}

double pearson_correlation(std::span<const double> a,
                           std::span<const double> b) {
  PALS_CHECK_MSG(a.size() == b.size() && !a.empty(),
                 "correlation needs equal-length, non-empty samples");
  const double mean_a = mean(a);
  const double mean_b = mean(b);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

IterationStats analyze_iterations(const Trace& trace) {
  const auto per_iteration = iteration_computation_times(trace);
  PALS_CHECK_MSG(!per_iteration.empty(), "trace carries no iterations");

  IterationStats stats;
  stats.iterations = per_iteration.size();
  const std::vector<Seconds> totals = trace.computation_times();
  stats.total_load_balance = load_balance(totals);

  double min_corr = 1.0;
  for (const auto& iteration : per_iteration) {
    stats.per_iteration_load_balance.push_back(load_balance(iteration));
    const double corr = pearson_correlation(iteration, totals);
    stats.iteration_correlation.push_back(corr);
    min_corr = std::min(min_corr, corr);
  }
  stats.mean_iteration_load_balance =
      mean(stats.per_iteration_load_balance);
  stats.min_iteration_load_balance =
      min_value(stats.per_iteration_load_balance);
  stats.drift_index = std::clamp(1.0 - min_corr, 0.0, 2.0);
  return stats;
}

}  // namespace pals
