#include "analysis/svg_chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

constexpr const char* kPalette[] = {"#2b6fb3", "#d1495b", "#2e9e4f",
                                    "#e8a33d", "#8659b5", "#4ab8b8",
                                    "#7a7a7a", "#b07aa1"};

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  void pad() {
    if (lo == hi) {
      lo -= 0.5;
      hi += 0.5;
    }
  }
  double span() const { return hi - lo; }
};

/// A "nice" tick step covering the range with 4-8 ticks.
double nice_step(double span) {
  const double raw = span / 5.0;
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw)));
  for (const double m : {1.0, 2.0, 5.0, 10.0}) {
    if (raw <= m * magnitude) return m * magnitude;
  }
  return 10.0 * magnitude;
}

std::string trim_number(double v) {
  std::string s = format_fixed(v, 3);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s.empty() ? "0" : s;
}

}  // namespace

std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options) {
  PALS_CHECK_MSG(!series.empty(), "chart needs at least one series");
  PALS_CHECK_MSG(options.width_px > 120 && options.height_px > 80,
                 "chart too small to render");
  Range xr;
  Range yr;
  for (const ChartSeries& s : series) {
    PALS_CHECK_MSG(s.x.size() == s.y.size(),
                   "series '" << s.label << "' has mismatched x/y sizes");
    PALS_CHECK_MSG(!s.x.empty(), "series '" << s.label << "' is empty");
    for (double v : s.x) xr.include(v);
    for (double v : s.y) yr.include(v);
  }
  if (options.y_from_zero) yr.include(0.0);
  xr.pad();
  yr.pad();

  const int margin_left = 56;
  const int margin_right = 12;
  const int margin_top = options.title.empty() ? 14 : 30;
  const int margin_bottom = 42;
  const double plot_w =
      options.width_px - margin_left - margin_right;
  const double plot_h =
      options.height_px - margin_top - margin_bottom;
  const auto sx = [&](double v) {
    return margin_left + (v - xr.lo) / xr.span() * plot_w;
  };
  const auto sy = [&](double v) {
    return margin_top + plot_h - (v - yr.lo) / yr.span() * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << options.width_px << "\" height=\"" << options.height_px
      << "\" font-family=\"sans-serif\" font-size=\"10\">\n";
  if (!options.title.empty())
    svg << "  <text x=\"" << margin_left << "\" y=\"18\" font-size=\"13\">"
        << options.title << "</text>\n";

  // Axes box and grid/ticks.
  svg << "  <rect x=\"" << margin_left << "\" y=\"" << margin_top
      << "\" width=\"" << plot_w << "\" height=\"" << plot_h
      << "\" fill=\"none\" stroke=\"#444\"/>\n";
  const double x_step = nice_step(xr.span());
  for (double v = std::ceil(xr.lo / x_step) * x_step; v <= xr.hi + 1e-12;
       v += x_step) {
    svg << "  <line x1=\"" << format_fixed(sx(v), 1) << "\" y1=\""
        << margin_top << "\" x2=\"" << format_fixed(sx(v), 1) << "\" y2=\""
        << margin_top + plot_h
        << "\" stroke=\"#ddd\"/>\n  <text text-anchor=\"middle\" x=\""
        << format_fixed(sx(v), 1) << "\" y=\""
        << margin_top + plot_h + 14 << "\">" << trim_number(v)
        << "</text>\n";
  }
  const double y_step = nice_step(yr.span());
  for (double v = std::ceil(yr.lo / y_step) * y_step; v <= yr.hi + 1e-12;
       v += y_step) {
    svg << "  <line x1=\"" << margin_left << "\" y1=\""
        << format_fixed(sy(v), 1) << "\" x2=\"" << margin_left + plot_w
        << "\" y2=\"" << format_fixed(sy(v), 1)
        << "\" stroke=\"#ddd\"/>\n  <text text-anchor=\"end\" x=\""
        << margin_left - 4 << "\" y=\"" << format_fixed(sy(v) + 3, 1)
        << "\">" << trim_number(v) << "</text>\n";
  }
  if (!options.x_label.empty())
    svg << "  <text text-anchor=\"middle\" x=\""
        << margin_left + plot_w / 2 << "\" y=\""
        << options.height_px - 6 << "\">" << options.x_label
        << "</text>\n";
  if (!options.y_label.empty())
    svg << "  <text text-anchor=\"middle\" transform=\"rotate(-90 12 "
        << margin_top + plot_h / 2 << ")\" x=\"12\" y=\""
        << margin_top + plot_h / 2 << "\">" << options.y_label
        << "</text>\n";

  // Series.
  for (std::size_t i = 0; i < series.size(); ++i) {
    const ChartSeries& s = series[i];
    const char* color = kPalette[i % std::size(kPalette)];
    if (s.connect && s.x.size() > 1) {
      svg << "  <polyline fill=\"none\" stroke=\"" << color
          << "\" stroke-width=\"1.5\" points=\"";
      for (std::size_t k = 0; k < s.x.size(); ++k)
        svg << format_fixed(sx(s.x[k]), 1) << ','
            << format_fixed(sy(s.y[k]), 1) << ' ';
      svg << "\"/>\n";
    }
    for (std::size_t k = 0; k < s.x.size(); ++k) {
      svg << "  <circle cx=\"" << format_fixed(sx(s.x[k]), 1) << "\" cy=\""
          << format_fixed(sy(s.y[k]), 1) << "\" r=\"2.5\" fill=\"" << color
          << "\"><title>" << s.label << " (" << trim_number(s.x[k]) << ", "
          << trim_number(s.y[k]) << ")</title></circle>\n";
    }
    // Legend entry.
    const int ly = margin_top + 6 + static_cast<int>(i) * 14;
    svg << "  <rect x=\"" << margin_left + plot_w - 110 << "\" y=\""
        << ly - 8 << "\" width=\"10\" height=\"10\" fill=\"" << color
        << "\"/>\n  <text x=\"" << margin_left + plot_w - 96 << "\" y=\""
        << ly << "\">" << s.label << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

void write_chart_file(const std::vector<ChartSeries>& series,
                      const std::string& path,
                      const ChartOptions& options) {
  atomic_write_file(path, render_chart(series, options));
}

}  // namespace pals
