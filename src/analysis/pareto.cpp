#include "analysis/pareto.hpp"

#include <sstream>

#include "util/csv.hpp"
#include "util/fsio.hpp"

namespace pals {

bool dominates(const ExperimentRow& a, const ExperimentRow& b) {
  const bool no_worse = a.normalized_time <= b.normalized_time &&
                        a.normalized_energy <= b.normalized_energy;
  const bool strictly_better = a.normalized_time < b.normalized_time ||
                               a.normalized_energy < b.normalized_energy;
  return no_worse && strictly_better;
}

std::vector<ParetoEntry> pareto_front(const std::vector<ExperimentRow>& rows) {
  std::vector<ParetoEntry> entries;
  entries.reserve(rows.size());
  for (const ExperimentRow& row : rows) entries.push_back({row, true});
  for (ParetoEntry& e : entries) {
    for (const ExperimentRow& other : rows) {
      if (other.instance != e.row.instance) continue;
      if (dominates(other, e.row)) {
        e.on_front = false;
        break;
      }
    }
  }
  return entries;
}

std::string pareto_to_csv(const std::vector<ParetoEntry>& entries) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"instance", "variant", "normalized_energy", "normalized_time",
           "normalized_edp", "on_front"});
  for (const ParetoEntry& e : entries) {
    csv.field(e.row.instance)
        .field(e.row.variant)
        .field(e.row.normalized_energy)
        .field(e.row.normalized_time)
        .field(e.row.normalized_edp)
        .field(std::string(e.on_front ? "1" : "0"));
    csv.end_row();
  }
  return out.str();
}

void write_pareto_csv(const std::vector<ParetoEntry>& entries,
                      const std::string& path) {
  atomic_write_file(path, pareto_to_csv(entries));
}

}  // namespace pals
