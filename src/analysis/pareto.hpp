// Energy/time Pareto fronts over experiment rows.
//
// The static-vs-dynamic controller comparison is two-objective: a variant
// is only interesting if no other variant of the same workload is at
// least as fast AND at least as frugal (and strictly better in one).
// This module marks each row's membership in that per-instance front so
// `pals_sweep --pareto=FILE` can emit a diffable CSV artifact (see
// configs/dynamic_pareto.grid and EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

#include "analysis/experiments.hpp"

namespace pals {

/// True when `a` weakly dominates `b` on (normalized_time,
/// normalized_energy): no worse in both objectives, strictly better in at
/// least one. Rows are only comparable within the same instance; callers
/// enforce that (pareto_front does).
bool dominates(const ExperimentRow& a, const ExperimentRow& b);

/// One row plus its front membership (input order preserved).
struct ParetoEntry {
  ExperimentRow row;
  bool on_front = false;
};

/// Mark each row's membership in its instance's Pareto front. Duplicate
/// objective vectors are all kept on the front (neither strictly
/// dominates the other). O(n²) per instance — sweep grids are small.
std::vector<ParetoEntry> pareto_front(const std::vector<ExperimentRow>& rows);

/// Deterministic CSV: instance,variant,normalized_energy,normalized_time,
/// normalized_edp,on_front (same float formatting as rows_to_csv).
std::string pareto_to_csv(const std::vector<ParetoEntry>& entries);

/// Write pareto_to_csv(entries) to `path` (throws on I/O failure).
void write_pareto_csv(const std::vector<ParetoEntry>& entries,
                      const std::string& path);

}  // namespace pals
