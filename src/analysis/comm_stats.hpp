// Communication statistics of a logical trace: rank-to-rank traffic
// matrix, message-size distribution, collective payload totals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace pals {

struct CommStats {
  Rank n_ranks = 0;
  /// bytes[src * n_ranks + dst]: point-to-point payload totals.
  std::vector<Bytes> bytes;
  /// messages[src * n_ranks + dst]: point-to-point message counts.
  std::vector<std::uint64_t> messages;
  /// Message sizes in log2 buckets: histogram[k] counts messages with
  /// size in [2^k, 2^(k+1)) bytes; bucket 0 also holds zero-byte sends.
  std::vector<std::uint64_t> size_histogram;
  /// Per-rank collective payload contribution (sum of CollectiveEvent
  /// bytes).
  std::vector<Bytes> collective_bytes;

  Bytes total_p2p_bytes() const;
  std::uint64_t total_messages() const;
  Bytes bytes_between(Rank src, Rank dst) const;

  /// Neighbour concentration: fraction of traffic on each rank's single
  /// busiest outgoing channel, averaged over ranks that send at all.
  /// ~1 for ring/halo codes, ~1/(n-1) for uniform all-to-all patterns.
  double channel_concentration() const;

  /// Render the matrix (bucketed to at most `max_ranks` groups) as an
  /// aligned text heat table using digits 0-9 proportional to traffic.
  std::string render_matrix(Rank max_ranks = 16) const;
};

/// Scan all send-type events (send/isend) of the trace.
CommStats analyze_communication(const Trace& trace);

}  // namespace pals
