#include "analysis/journal.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

constexpr int kJournalVersion = 1;
constexpr const char* kJournalFormat = "pals-journal";

/// Keep records one-per-line: error messages may carry multi-line lint
/// reports or deadlock cycles.
std::string escape_newlines(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_newlines(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    PALS_CHECK_MSG(i + 1 < text.size(),
                   "journal record: dangling escape in '" << text << "'");
    const char next = text[++i];
    switch (next) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default:
        throw Error(std::string("journal record: unknown escape '\\") + next +
                    "'");
    }
  }
  return out;
}

std::string checksum_hex(std::string_view kind, std::string_view index,
                         std::string_view payload) {
  std::string text;
  text.reserve(kind.size() + index.size() + payload.size() + 2);
  text.append(kind);
  text += ' ';
  text.append(index);
  text += ' ';
  text.append(payload);
  return to_hex(crc32(text), 8);
}

std::string row_payload(const ExperimentRow& row) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.field(row.instance)
      .field(row.variant)
      .field(format_roundtrip(row.load_balance))
      .field(format_roundtrip(row.parallel_efficiency))
      .field(format_roundtrip(row.normalized_energy))
      .field(format_roundtrip(row.normalized_time))
      .field(format_roundtrip(row.normalized_edp))
      .field(format_roundtrip(row.overclocked_fraction));
  return os.str();
}

std::string error_payload(const JournalRecord& record) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.field(record.workload)
      .field(record.variant)
      .field(record.error_class)
      .field(static_cast<long long>(record.attempts))
      .field(static_cast<long long>(record.retries))
      .field(format_roundtrip(record.backoff_seconds))
      .field(escape_newlines(record.message));
  return os.str();
}

std::string pruned_payload(const JournalRecord& record) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.field(record.workload)
      .field(record.variant)
      .field(format_roundtrip(record.lb_normalized_time))
      .field(format_roundtrip(record.lb_normalized_energy))
      .field(static_cast<long long>(record.dominated_by));
  return os.str();
}

std::string heartbeat_payload(const JournalRecord& record) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.field(record.shard)
      .field(static_cast<long long>(record.cells_done))
      .field(format_roundtrip(record.unix_seconds));
  return os.str();
}

JournalRecord parse_record(std::string_view kind, const std::string& index,
                           const std::string& payload) {
  JournalRecord record;
  record.index = static_cast<std::size_t>(parse_int(index));
  const std::vector<std::string> fields = parse_csv_line(payload);
  if (kind == "R") {
    record.kind = JournalRecord::Kind::kRow;
    PALS_CHECK_MSG(fields.size() == 8, "journal row record: expected 8 csv "
                                       "fields, got " << fields.size());
    record.row.instance = fields[0];
    record.row.variant = fields[1];
    record.row.load_balance = parse_double(fields[2]);
    record.row.parallel_efficiency = parse_double(fields[3]);
    record.row.normalized_energy = parse_double(fields[4]);
    record.row.normalized_time = parse_double(fields[5]);
    record.row.normalized_edp = parse_double(fields[6]);
    record.row.overclocked_fraction = parse_double(fields[7]);
  } else if (kind == "P") {
    record.kind = JournalRecord::Kind::kPruned;
    PALS_CHECK_MSG(fields.size() == 5, "journal pruned record: expected 5 csv "
                                       "fields, got " << fields.size());
    record.workload = fields[0];
    record.variant = fields[1];
    record.lb_normalized_time = parse_double(fields[2]);
    record.lb_normalized_energy = parse_double(fields[3]);
    record.dominated_by = static_cast<std::size_t>(parse_int(fields[4]));
  } else if (kind == "H") {
    record.kind = JournalRecord::Kind::kHeartbeat;
    PALS_CHECK_MSG(fields.size() == 3,
                   "journal heartbeat record: expected 3 csv fields, got "
                       << fields.size());
    record.shard = fields[0];
    record.cells_done = static_cast<std::size_t>(parse_int(fields[1]));
    record.unix_seconds = parse_double(fields[2]);
  } else {
    record.kind = JournalRecord::Kind::kError;
    PALS_CHECK_MSG(fields.size() == 7, "journal error record: expected 7 csv "
                                       "fields, got " << fields.size());
    record.workload = fields[0];
    record.variant = fields[1];
    record.error_class = fields[2];
    record.attempts = static_cast<int>(parse_int(fields[3]));
    record.retries = static_cast<int>(parse_int(fields[4]));
    record.backoff_seconds = parse_double(fields[5]);
    record.message = unescape_newlines(fields[6]);
  }
  return record;
}

const JsonValue& require_member(const JsonValue& object, const char* key,
                                JsonValue::Kind kind, const char* kind_name) {
  const JsonValue* value = object.find(key);
  PALS_CHECK_MSG(value != nullptr,
                 "journal header: missing '" << key << "'");
  PALS_CHECK_MSG(value->kind == kind,
                 "journal header: '" << key << "' must be a " << kind_name);
  return *value;
}

}  // namespace

std::string JournalHeader::to_json_line() const {
  return std::string("{\"format\":\"") + kJournalFormat +
         "\",\"version\":" + std::to_string(version) + ",\"config_hash\":\"" +
         json_escape(config_hash) + "\",\"scenarios\":" +
         std::to_string(scenarios) + "}";
}

JournalHeader JournalHeader::from_json_line(const std::string& line) {
  JsonValue doc;
  try {
    doc = json_parse(line);
  } catch (const Error& e) {
    throw Error(std::string("journal header is not valid JSON: ") + e.what());
  }
  PALS_CHECK_MSG(doc.is_object(), "journal header: expected a JSON object");
  const JsonValue& format =
      require_member(doc, "format", JsonValue::Kind::kString, "string");
  PALS_CHECK_MSG(format.string == kJournalFormat,
                 "journal header: format '" << format.string << "' is not '"
                                            << kJournalFormat << "'");
  JournalHeader header;
  const JsonValue& version =
      require_member(doc, "version", JsonValue::Kind::kNumber, "number");
  header.version = static_cast<int>(version.number);
  PALS_CHECK_MSG(header.version == kJournalVersion,
                 "journal header: unsupported version "
                     << header.version << " (this build reads version "
                     << kJournalVersion << ")");
  header.config_hash =
      require_member(doc, "config_hash", JsonValue::Kind::kString, "string")
          .string;
  const JsonValue& scenarios =
      require_member(doc, "scenarios", JsonValue::Kind::kNumber, "number");
  PALS_CHECK_MSG(scenarios.number >= 1.0,
                 "journal header: scenarios must be >= 1");
  header.scenarios = static_cast<std::size_t>(scenarios.number);
  return header;
}

std::string JournalRecord::to_line() const {
  const std::string kind_token = kind == Kind::kRow         ? "R"
                                 : kind == Kind::kPruned    ? "P"
                                 : kind == Kind::kHeartbeat ? "H"
                                                            : "E";
  const std::string index_token = std::to_string(index);
  const std::string payload = kind == Kind::kRow ? row_payload(row)
                              : kind == Kind::kPruned
                                  ? pruned_payload(*this)
                              : kind == Kind::kHeartbeat
                                  ? heartbeat_payload(*this)
                                  : error_payload(*this);
  return kind_token + ' ' + index_token + ' ' +
         checksum_hex(kind_token, index_token, payload) + ' ' + payload;
}

JournalWriter JournalWriter::create(const std::string& path,
                                    const JournalHeader& header) {
  // Publish the header atomically: a crash before this rename leaves no
  // file, a crash after it leaves a valid empty journal.
  atomic_write_file(path, header.to_json_line() + "\n");
  return JournalWriter(DurableFile::open_append(path));
}

JournalWriter JournalWriter::open_existing(const std::string& path) {
  return JournalWriter(DurableFile::open_append(path));
}

void JournalWriter::append(const JournalRecord& record) {
  file_.append(record.to_line() + "\n");
  file_.sync();
  ++appended_;
}

JournalReadReport read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PALS_CHECK_MSG(in.good(), "cannot open journal '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  PALS_CHECK_MSG(!text.empty(), "journal '" << path << "' is empty");

  // Split keeping track of whether the final line was newline-terminated:
  // an unterminated tail is the signature of a crash mid-append.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  const bool last_terminated = text.back() == '\n';

  JournalReadReport report;
  report.header = JournalHeader::from_json_line(lines.front());
  PALS_CHECK_MSG(lines.size() > 1 || last_terminated,
                 "journal '" << path << "': truncated header line");

  std::vector<std::string> seen_lines(report.header.scenarios);
  std::vector<char> seen(report.header.scenarios, 0);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const bool is_tail = i + 1 == lines.size() && !last_terminated;
    const auto fail = [&](const std::string& why) -> Error {
      return Error("journal '" + path + "' line " + std::to_string(i + 1) +
                   ": " + why);
    };

    // Structural phase: token layout + checksum. Damage here on the
    // unterminated final line is the expected crash artifact (a torn
    // append) — drop the record and let the cell re-run. Anywhere else
    // it means the file was modified behind our back.
    std::string kind;
    std::string index;
    std::string payload;
    {
      const std::size_t s1 = line.find(' ');
      const std::size_t s2 =
          s1 == std::string::npos ? std::string::npos : line.find(' ', s1 + 1);
      const std::size_t s3 =
          s2 == std::string::npos ? std::string::npos : line.find(' ', s2 + 1);
      const bool structured = s3 != std::string::npos;
      kind = structured ? line.substr(0, s1) : "";
      index = structured ? line.substr(s1 + 1, s2 - s1 - 1) : "";
      payload = structured ? line.substr(s3 + 1) : "";
      const bool known_kind =
          kind == "R" || kind == "E" || kind == "P" || kind == "H";
      const bool intact =
          structured && known_kind &&
          line.substr(s2 + 1, s3 - s2 - 1) == checksum_hex(kind, index, payload);
      if (!intact) {
        if (is_tail) {
          report.tail_dropped = true;
          break;
        }
        if (!structured) throw fail("not a 'kind index checksum payload' record");
        if (!known_kind)
          throw fail("unknown record kind '" + kind + "'");
        throw fail("record checksum mismatch (bit corruption)");
      }
    }

    // Semantic phase: the bytes are bit-intact (checksum passed), so any
    // inconsistency from here on is real corruption even on the tail.
    try {
      JournalRecord record = parse_record(kind, index, payload);
      if (record.kind == JournalRecord::Kind::kHeartbeat) {
        // Liveness evidence, not a cell outcome: heartbeat sequence
        // numbers are unbounded and may repeat across worker restarts,
        // so they bypass the per-cell slot/duplicate machinery entirely.
        report.heartbeats.push_back(std::move(record));
        continue;
      }
      PALS_CHECK_MSG(
          record.index < report.header.scenarios,
          "record index " << record.index << " out of range (header declares "
                          << report.header.scenarios << " scenarios)");
      if (record.kind == JournalRecord::Kind::kPruned)
        PALS_CHECK_MSG(record.dominated_by < report.header.scenarios,
                       "pruned record dominator " << record.dominated_by
                           << " out of range (header declares "
                           << report.header.scenarios << " scenarios)");
      if (seen[record.index] != 0) {
        PALS_CHECK_MSG(seen_lines[record.index] == line,
                       "conflicting duplicate records for cell "
                           << record.index);
        continue;  // identical duplicate: idempotent, collapse
      }
      seen[record.index] = 1;
      seen_lines[record.index] = line;
      report.records.push_back(std::move(record));
    } catch (const Error& e) {
      throw fail(e.what());
    }
  }
  return report;
}

}  // namespace pals
