#include "analysis/gantt.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {
namespace {

char state_char(RankState state) {
  switch (state) {
    case RankState::kCompute: return '#';
    case RankState::kSend: return '<';
    case RankState::kRecv: return '>';
    case RankState::kWait: return 'w';
    case RankState::kCollective: return '*';
    case RankState::kIdle: return '.';
  }
  return '?';
}

}  // namespace

std::string render_gantt(const Timeline& timeline, const GanttOptions& options) {
  PALS_CHECK_MSG(options.width > 0, "gantt width must be positive");
  const Seconds span = timeline.makespan();
  PALS_CHECK_MSG(span > 0.0, "cannot render an empty timeline");
  const double cell = span / options.width;

  std::vector<Rank> rows;
  const Rank n = timeline.n_ranks();
  if (options.max_ranks <= 0 || options.max_ranks >= n) {
    for (Rank r = 0; r < n; ++r) rows.push_back(r);
  } else {
    for (Rank i = 0; i < options.max_ranks; ++i)
      rows.push_back(static_cast<Rank>(
          static_cast<long long>(i) * n / options.max_ranks));
  }

  std::ostringstream os;
  for (const Rank r : rows) {
    os << "r";
    const std::string label = std::to_string(r);
    os << label << std::string(5 - std::min<std::size_t>(5, label.size()), ' ')
       << '|';
    std::string row(static_cast<std::size_t>(options.width), '.');
    for (const StateInterval& iv : timeline.intervals(r)) {
      auto first = static_cast<long long>(iv.begin / cell);
      auto last = static_cast<long long>(iv.end / cell);
      first = std::clamp<long long>(first, 0, options.width - 1);
      last = std::clamp<long long>(last, 0, options.width - 1);
      for (long long cidx = first; cidx <= last; ++cidx) {
        // Majority rule per cell: compute wins over short comm slivers,
        // approximated by overlap length.
        const double cell_begin = static_cast<double>(cidx) * cell;
        const double cell_end = cell_begin + cell;
        const double overlap =
            std::min(iv.end, cell_end) - std::max(iv.begin, cell_begin);
        if (overlap >= 0.5 * cell || row[static_cast<std::size_t>(cidx)] == '.')
          row[static_cast<std::size_t>(cidx)] = state_char(iv.state);
      }
    }
    os << row << "|\n";
  }
  if (options.show_legend) {
    os << "      time -> 0.." << format_fixed(span * 1e3, 2) << " ms; "
       << "# compute  < send  > recv  w wait  * collective  . idle\n";
  }
  return os.str();
}

}  // namespace pals
