#include "analysis/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/bounds.hpp"
#include "analysis/pareto.hpp"
#include "core/controllers.hpp"
#include "lint/lint.hpp"
#include "obs/record.hpp"
#include "obs/span.hpp"
#include "power/gearset.hpp"
#include "replay/replay.hpp"
#include "shard/partition.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/kvconfig.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace pals {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Background reporter for SweepOptions::progress_stream: wakes every
/// interval, reads the completion counter and prints one whole line.
/// Joined (with a final line) before run_sweep returns.
class ProgressMonitor {
 public:
  ProgressMonitor(std::ostream* out, double interval_seconds,
                  std::size_t total, const obs::Counter& completed,
                  std::uint64_t baseline)
      : out_(out), total_(total), completed_(completed), baseline_(baseline) {
    if (out_ == nullptr) return;
    start_ = Clock::now();
    thread_ = std::thread([this, interval_seconds] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!done_) {
        stop_.wait_for(lock,
                       std::chrono::duration<double>(interval_seconds));
        if (done_) break;
        print_line();
      }
    });
  }

  ~ProgressMonitor() {
    if (out_ == nullptr) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    stop_.notify_all();
    thread_.join();
    print_line();  // final "N/N" line
  }

  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

 private:
  void print_line() {
    const std::uint64_t done = completed_.value() - baseline_;
    const double elapsed = seconds_since(start_);
    std::string line = "sweep: " + std::to_string(done) + "/" +
                       std::to_string(total_) + " scenarios, elapsed " +
                       format_fixed(elapsed, 1) + "s";
    if (done > 0 && done < total_) {
      const double eta =
          elapsed / static_cast<double>(done) *
          static_cast<double>(total_ - done);
      line += ", ETA " + format_fixed(eta, 1) + "s";
    }
    line += '\n';
    out_->write(line.data(), static_cast<std::streamsize>(line.size()));
    out_->flush();
  }

  std::ostream* out_;
  std::size_t total_;
  const obs::Counter& completed_;
  std::uint64_t baseline_;
  Clock::time_point start_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable stop_;
  bool done_ = false;
};

/// Background liveness beater for SweepOptions::heartbeat_interval_seconds
/// (docs/sharding.md): wakes every interval and invokes the supplied
/// journal-append callback. Joined before run_sweep returns, so no beat
/// can outlive the journal.
class HeartbeatMonitor {
 public:
  HeartbeatMonitor(double interval_seconds, std::function<void()> beat)
      : beat_(std::move(beat)) {
    if (interval_seconds <= 0.0 || !beat_) return;
    active_ = true;
    thread_ = std::thread([this, interval_seconds] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!done_) {
        stop_.wait_for(lock, std::chrono::duration<double>(interval_seconds));
        if (done_) break;
        lock.unlock();
        beat_();
        lock.lock();
      }
    });
  }

  ~HeartbeatMonitor() {
    if (!active_) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    stop_.notify_all();
    thread_.join();
  }

  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

 private:
  std::function<void()> beat_;
  bool active_ = false;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable stop_;
  bool done_ = false;
};

std::vector<double> parse_beta_list(const std::string& text) {
  std::vector<double> betas;
  for (const std::string& field : split(text, ','))
    betas.push_back(parse_double(trim(field)));
  return betas;
}

std::vector<std::string> parse_name_list(const std::string& text) {
  std::vector<std::string> names;
  for (const std::string& field : split(text, ','))
    names.emplace_back(trim(field));
  return names;
}

}  // namespace

Algorithm algorithm_by_name(const std::string& name) {
  if (name == "max") return Algorithm::kMax;
  if (name == "avg") return Algorithm::kAvg;
  if (name == "energy-optimal") return Algorithm::kEnergyOptimalMax;
  throw Error("unknown algorithm '" + name +
              "' (try max, avg, energy-optimal)");
}

std::string Scenario::variant_label() const {
  if (!label.empty()) return label;
  std::string derived;
  if (!controller.empty() && controller != "static")
    derived += controller + " ";
  switch (algorithm) {
    case Algorithm::kMax: break;  // the paper's default; no prefix
    case Algorithm::kAvg: derived += "AVG "; break;
    case Algorithm::kEnergyOptimalMax: derived += "EOPT "; break;
  }
  derived += gear_set;
  if (beta != 0.5) derived += " beta=" + format_fixed(beta, 2);
  return derived;
}

SweepGrid SweepGrid::from_file(const std::string& path) {
  const KvConfig kv = KvConfig::parse_file(path);
  kv.require_known_keys({"workloads", "gear_sets", "algorithms", "controllers",
                         "betas", "iterations"});
  SweepGrid grid;
  grid.workloads = parse_name_list(kv.get_string("workloads"));
  grid.gear_sets = parse_name_list(kv.get_string("gear_sets"));
  if (kv.has("algorithms")) {
    grid.algorithms.clear();
    for (const std::string& name : parse_name_list(kv.get_string("algorithms")))
      grid.algorithms.push_back(algorithm_by_name(name));
  }
  if (kv.has("controllers"))
    grid.controllers = parse_name_list(kv.get_string("controllers"));
  if (kv.has("betas")) grid.betas = parse_beta_list(kv.get_string("betas"));
  grid.iterations =
      static_cast<int>(kv.get_int_or("iterations", grid.iterations));
  grid.validate();
  return grid;
}

void SweepGrid::validate() const {
  PALS_CHECK_MSG(!workloads.empty(), "sweep grid has no workloads");
  PALS_CHECK_MSG(!gear_sets.empty(), "sweep grid has no gear sets");
  PALS_CHECK_MSG(!algorithms.empty(), "sweep grid has no algorithms");
  PALS_CHECK_MSG(!controllers.empty(), "sweep grid has no controllers");
  for (const std::string& name : controllers)
    controller_by_name(name);  // throws with the valid options on a typo
  PALS_CHECK_MSG(!betas.empty(), "sweep grid has no betas");
  PALS_CHECK_MSG(iterations > 0, "sweep grid iterations must be > 0");
  for (const double beta : betas)
    PALS_CHECK_MSG(beta > 0.0 && beta <= 1.0,
                   "sweep grid beta " << beta << " outside (0, 1]");
}

std::vector<Scenario> SweepGrid::expand() const {
  validate();
  std::vector<Scenario> scenarios;
  scenarios.reserve(workloads.size() * gear_sets.size() * algorithms.size() *
                    controllers.size() * betas.size());
  for (const std::string& workload : workloads)
    for (const std::string& gear_set : gear_sets)
      for (const Algorithm algorithm : algorithms)
        for (const std::string& controller : controllers)
          for (const double beta : betas)
            scenarios.push_back(
                Scenario{workload, gear_set, algorithm, beta, "", controller});
  return scenarios;
}

std::string ScenarioError::describe() const {
  std::string out = "cell " + std::to_string(index) + " " + workload;
  if (!variant.empty()) out += " [" + variant + "]";
  out += ": " + fault::to_string(error_class);
  if (retries > 0) out += " after " + std::to_string(attempts) + " attempts";
  out += ": " + message;
  return out;
}

std::string SweepStats::to_kv() const {
  std::string out;
  const auto put = [&out](const std::string& key, const std::string& value) {
    out += key + " = " + value + "\n";
  };
  put("scenarios", std::to_string(scenarios));
  put("workloads", std::to_string(workloads));
  put("jobs", std::to_string(jobs));
  put("wall_seconds", format_fixed(wall_seconds, 6));
  put("scenarios_per_second", format_fixed(scenarios_per_second, 6));
  put("baseline_cache_misses", std::to_string(baseline_cache_misses));
  put("baseline_cache_hits", std::to_string(baseline_cache_hits));
  put("baseline_cache_hit_rate", format_fixed(baseline_cache_hit_rate, 6));
  put("scenario_seconds_total", format_fixed(scenario_seconds_total, 6));
  put("scenario_seconds_max", format_fixed(scenario_seconds_max, 6));
  put("quarantined", std::to_string(quarantined));
  put("transient_retries", std::to_string(transient_retries));
  put("backoff_seconds", format_fixed(backoff_seconds, 6));
  put("resumed_cells", std::to_string(resumed_cells));
  put("skipped_cells", std::to_string(skipped_cells));
  put("journal_records", std::to_string(journal_records));
  put("pruned_cells", std::to_string(pruned_cells));
  put("shard_cells_owned", std::to_string(shard_cells_owned));
  put("shard_cells_foreign", std::to_string(shard_cells_foreign));
  put("heartbeats_written", std::to_string(heartbeats_written));
  return out;
}

namespace {

/// Canonical text rendering of everything result-affecting, hashed by
/// sweep_config_hash. Append-only by construction: any change to the
/// format changes every hash, which is exactly the desired effect (a
/// resume across versions with different semantics must be refused).
std::string config_canonical_text(const std::vector<Scenario>& scenarios,
                                  const SweepOptions& options) {
  std::string canon = "pals-sweep-config-v2";
  const auto put = [&canon](const std::string& key, const std::string& value) {
    canon += "|" + key + "=" + value;
  };
  const auto put_d = [&](const std::string& key, double value) {
    put(key, format_roundtrip(value));
  };
  put("iterations", std::to_string(options.iterations));
  put("keep_going", options.keep_going ? "1" : "0");
  put("max_retries", std::to_string(options.retry.max_retries));
  put_d("backoff_base", options.retry.backoff_base);
  put_d("backoff_multiplier", options.retry.backoff_multiplier);
  put_d("backoff_cap", options.retry.backoff_cap);

  const PipelineConfig& base = options.base;
  const PlatformModel& platform = base.replay.platform;
  put_d("latency", platform.latency);
  put_d("bandwidth", platform.bandwidth);
  put("eager_threshold", std::to_string(platform.eager_threshold));
  put("buses", std::to_string(platform.buses));
  put("links_per_node", std::to_string(platform.links_per_node));
  put_d("collective_scale", platform.collective_scale);
  for (const auto& [op, algo] : platform.collective_algorithms)
    put("collective_algo." + std::to_string(static_cast<int>(op)),
        std::to_string(static_cast<int>(algo)));
  canon += "|relative_speed=";
  for (const double speed : base.replay.relative_speed)
    canon += format_roundtrip(speed) + ";";
  put("max_simulated_events", std::to_string(base.replay.max_simulated_events));

  put_d("power.activity_ratio", base.power.activity_ratio);
  put_d("power.static_fraction", base.power.static_fraction);
  put_d("power.beta", base.power.beta);
  put_d("power.reference_f", base.power.reference.frequency_ghz);
  put_d("power.reference_v", base.power.reference.voltage_v);
  put_d("power.idle_scale", base.power.idle_scale);

  put("algorithm", std::to_string(static_cast<int>(base.algorithm.algorithm)));
  put_d("algorithm.beta", base.algorithm.beta);
  put_d("nominal_fmax_ghz", base.algorithm.nominal_fmax_ghz);
  put("snap_policy",
      std::to_string(static_cast<int>(base.algorithm.snap_policy)));
  put("per_phase", base.per_phase ? "1" : "0");
  put("lint", base.lint ? "1" : "0");

  put("controller.kind",
      std::to_string(static_cast<int>(base.controller.kind)));
  put_d("controller.transition_latency", base.controller.transition_latency);
  put_d("controller.transition_energy", base.controller.transition_energy);
  put_d("controller.slack_threshold", base.controller.slack_threshold);
  put_d("controller.hysteresis", base.controller.hysteresis);
  put_d("controller.ewma_alpha", base.controller.ewma_alpha);

  const fault::Injector* faults =
      options.faults != nullptr ? options.faults : base.replay.faults;
  put("faults", faults != nullptr ? faults->plan().describe() : "");

  // Appended only when the feature deviates from the default so every
  // pre-existing journal hash stays valid. Pruning changes which cells
  // produce rows; disabling the oracle changes which cells can fail.
  if (options.prune_bounds) put("prune_bounds", "1");
  if (!options.bounds_oracle) put("bounds_oracle", "0");

  for (const Scenario& s : scenarios) {
    canon += "|scenario=" + s.workload + ";" + s.gear_set + ";" +
             std::to_string(static_cast<int>(s.algorithm)) + ";" +
             format_roundtrip(s.beta) + ";" + s.label + ";" + s.controller;
  }
  return canon;
}

}  // namespace

std::string sweep_config_hash(const std::vector<Scenario>& scenarios,
                              const SweepOptions& options) {
  return to_hex(fnv1a64(config_canonical_text(scenarios, options)), 16);
}

SweepResult run_sweep(const std::vector<Scenario>& scenarios,
                      const SweepOptions& options) {
  PALS_CHECK_MSG(!scenarios.empty(), "sweep has no scenarios");
  options.base.validate();
  PALS_CHECK_MSG(options.cell_timeout_seconds >= 0.0,
                 "cell_timeout_seconds must be >= 0 (0 disables the watchdog)");
  PALS_CHECK_MSG(options.shard_count >= 1, "shard_count must be >= 1");
  PALS_CHECK_MSG(options.shard_index < options.shard_count,
                 "shard_index " << options.shard_index
                     << " out of range (shard_count " << options.shard_count
                     << ")");
  PALS_CHECK_MSG(options.heartbeat_interval_seconds >= 0.0,
                 "heartbeat_interval_seconds must be >= 0 (0 disables)");
  const auto sweep_start = Clock::now();
  obs::Registry& reg = obs::default_registry();
  obs::Registry* span_reg = options.base.observe ? &reg : nullptr;
  reg.counter("sweep.runs").add(1);
  reg.counter("sweep.scenarios").add(scenarios.size());

  // Resolve everything serially up front so bad names fail with scenario
  // context before any thread spawns, and workers only do numeric work.
  std::vector<WorkloadRef> workloads;
  std::map<std::string, std::size_t> workload_index;
  std::vector<std::size_t> scenario_workload(scenarios.size());
  std::vector<GearSet> scenario_gears;
  scenario_gears.reserve(scenarios.size());
  std::vector<ControllerKind> scenario_controllers;
  scenario_controllers.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    WorkloadRef ref = resolve_workload(s.workload, options.iterations);
    const auto [it, inserted] =
        workload_index.emplace(ref.key, workloads.size());
    if (inserted) workloads.push_back(std::move(ref));
    scenario_workload[i] = it->second;
    scenario_gears.push_back(gear_set_by_name(s.gear_set));
    scenario_controllers.push_back(
        s.controller.empty() ? ControllerKind::kStatic
                             : controller_by_name(s.controller));
  }

  // Sharded execution (docs/sharding.md): ownership is a pure function of
  // the canonical index (or of the workload key when prune_bounds keeps
  // groups shard-local), so every shard — and the supervisor's merge —
  // derives the same partition with no coordination. Foreign cells are
  // never run, journaled or counted as skipped.
  const shard::ShardSpec shard_spec{options.shard_index, options.shard_count};
  std::vector<char> owned(scenarios.size(), 1);
  std::size_t owned_cells = scenarios.size();
  if (shard_spec.active()) {
    owned_cells = 0;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const std::size_t home =
          options.prune_bounds
              ? shard::shard_of_group(workloads[scenario_workload[i]].key,
                                      shard_spec.count)
              : shard::shard_of_cell(i, shard_spec.count);
      owned[i] = home == shard_spec.index ? 1 : 0;
      owned_cells += static_cast<std::size_t>(owned[i]);
    }
    reg.counter("shard.cells_owned").add(owned_cells);
    reg.counter("shard.cells_foreign").add(scenarios.size() - owned_cells);
  }

  TraceCache private_cache;
  TraceCache& cache =
      options.trace_cache ? *options.trace_cache : private_cache;
  ThreadPool pool(options.jobs);

  // The fault injector (if any) rides through PipelineConfig::replay so
  // baseline and scaled replays both see the perturbed machine.
  const fault::Injector* faults =
      options.faults != nullptr ? options.faults : options.base.replay.faults;

  // Static bounds integration (docs/bounds.md). The analyzer describes
  // the fault-free single-schedule replay, so pruning refuses fault plans
  // and per-phase configs outright while the always-on oracle merely
  // disarms (a perturbed or per-phase sweep is still a valid sweep).
  PALS_CHECK_MSG(!options.prune_bounds || faults == nullptr,
                 "prune_bounds requires a fault-free sweep (the static "
                 "bounds describe the unperturbed replay)");
  PALS_CHECK_MSG(!options.prune_bounds || !options.base.per_phase,
                 "prune_bounds does not support per-phase configurations "
                 "(no single schedule to bound)");
  const bool prune_enabled = options.prune_bounds;
  const bool oracle_armed =
      options.bounds_oracle && faults == nullptr && !options.base.per_phase;

  ReplayConfig baseline_config = options.base.replay;
  baseline_config.faults = faults;
  if (options.cell_timeout_seconds > 0.0)
    baseline_config.max_wall_seconds = options.cell_timeout_seconds;

  // Crash-safe execution setup (docs/resume.md). The canonical result
  // slots are allocated before phase 1 so a resume journal can pre-fill
  // them: `done` cells skip phase 2 entirely, and workloads whose every
  // cell is done skip their (expensive) phase-1 baseline too.
  std::vector<ExperimentRow> row_slots(scenarios.size());
  std::vector<double> second_slots(scenarios.size(), 0.0);
  std::vector<char> row_ok(scenarios.size(), 0);
  std::vector<std::optional<ScenarioError>> error_slots(scenarios.size());
  std::vector<std::optional<PrunedCell>> pruned_slots(scenarios.size());
  std::vector<char> done(scenarios.size(), 0);
  std::string config_hash;
  if (!options.journal_path.empty() || options.resume != nullptr)
    config_hash = sweep_config_hash(scenarios, options);
  std::size_t resumed_cells = 0;
  if (options.resume != nullptr) {
    PALS_SPAN("sweep.journal_replay", span_reg);
    const JournalReadReport& prior = *options.resume;
    PALS_CHECK_MSG(prior.header.scenarios == scenarios.size(),
                   "resume journal describes " << prior.header.scenarios
                       << " scenarios but this sweep has " << scenarios.size());
    PALS_CHECK_MSG(
        prior.header.config_hash == config_hash,
        "resume journal config hash " << prior.header.config_hash
            << " does not match this sweep's " << config_hash
            << " (the journal belongs to a different sweep configuration)");
    for (const JournalRecord& record : prior.records) {
      const std::size_t i = record.index;
      if (record.kind == JournalRecord::Kind::kRow) {
        row_slots[i] = record.row;
        row_ok[i] = 1;
      } else if (record.kind == JournalRecord::Kind::kPruned) {
        PALS_CHECK_MSG(prune_enabled,
                       "resume journal records pruned cell "
                           << i << " but this sweep does not set "
                              "prune_bounds");
        pruned_slots[i] = PrunedCell{i,
                                     record.workload,
                                     record.variant,
                                     record.lb_normalized_time,
                                     record.lb_normalized_energy,
                                     record.dominated_by,
                                     scenarios[record.dominated_by]
                                         .variant_label()};
      } else {
        error_slots[i] = ScenarioError{
            i,
            record.workload,
            record.variant,
            fault::error_class_from_string(record.error_class),
            record.attempts,
            record.retries,
            record.backoff_seconds,
            record.message};
      }
      done[i] = 1;
      ++resumed_cells;
    }
    reg.counter("resume.cells_skipped").add(resumed_cells);
  }
  std::optional<JournalWriter> journal;
  std::mutex journal_mutex;
  if (!options.journal_path.empty()) {
    if (options.resume != nullptr) {
      journal.emplace(JournalWriter::open_existing(options.journal_path));
    } else {
      JournalHeader header;
      header.config_hash = config_hash;
      header.scenarios = scenarios.size();
      journal.emplace(JournalWriter::create(options.journal_path, header));
    }
  }
  const std::atomic<bool>* cancel = options.cancel;
  std::atomic<std::size_t> skipped{0};

  // Liveness heartbeats (docs/sharding.md): a background thread appends
  // one "H" record per interval so pals_shepherd can tell a slow shard
  // from a hung one. Sequence numbers continue past any heartbeats the
  // resumed journal already holds; the beat deliberately bypasses
  // on_journal_record (--kill-after counts *cell* records, and a
  // host-timed beat must not shift that deterministic point).
  obs::Counter& completed = reg.counter("sweep.scenarios_completed");
  const std::uint64_t completed_baseline = completed.value();
  std::size_t heartbeat_seq =
      options.resume != nullptr ? options.resume->heartbeats.size() : 0;
  std::size_t heartbeats_written = 0;
  std::optional<HeartbeatMonitor> heartbeat;
  if (options.heartbeat_interval_seconds > 0.0 && journal.has_value()) {
    const std::string shard_label = shard_spec.to_string();
    heartbeat.emplace(options.heartbeat_interval_seconds, [&, shard_label] {
      JournalRecord record;
      record.kind = JournalRecord::Kind::kHeartbeat;
      record.shard = shard_label;
      record.unix_seconds =
          std::chrono::duration<double>(
              std::chrono::system_clock::now().time_since_epoch())
              .count();
      std::lock_guard<std::mutex> lock(journal_mutex);
      record.index = heartbeat_seq++;
      record.cells_done =
          static_cast<std::size_t>(completed.value() - completed_baseline);
      journal->append(record);
      ++heartbeats_written;
    });
  }

  // Phase 1: one trace + baseline replay per unique workload. The
  // baseline depends only on the trace and the platform, so every
  // scenario of the workload shares it. With the opt-in lint hook
  // (options.base.lint) each workload trace is statically verified here,
  // once. Without keep_going a bad workload aborts the sweep with the
  // full diagnostic report before any scenario runs; with keep_going the
  // failure is recorded per workload and only that workload's cells are
  // quarantined — independent workloads still produce results.
  std::vector<char> workload_needed(workloads.size(), 0);
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    if (done[i] == 0 && owned[i] != 0)
      workload_needed[scenario_workload[i]] = 1;
  std::size_t baselines_needed = 0;
  for (const char needed : workload_needed)
    baselines_needed += static_cast<std::size_t>(needed);
  reg.counter("sweep.baseline_replays").add(baselines_needed);
  std::vector<const Trace*> traces(workloads.size());
  std::vector<ReplayResult> baselines(workloads.size());
  std::vector<fault::GuardOutcome> workload_outcomes(workloads.size());
  std::vector<char> workload_skipped(workloads.size(), 0);
  {
    PALS_SPAN("sweep.baselines", span_reg);
    pool.parallel_for(workloads.size(), [&](std::size_t w) {
      if (workload_needed[w] == 0) {
        // Every cell of this workload was resumed from the journal; its
        // trace and baseline are never consulted again.
        workload_outcomes[w].ok = true;
        return;
      }
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        workload_skipped[w] = 1;
        workload_outcomes[w].ok = true;
        return;
      }
      PALS_SPAN_DETAIL("sweep.baseline", span_reg, workloads[w].display);
      const auto body = [&](int) {
        traces[w] = &cache.get(workloads[w].key, workloads[w].build);
        if (options.base.lint) {
          lint::LintOptions lint_options;
          lint_options.eager_threshold =
              options.base.replay.platform.eager_threshold;
          lint::enforce_lint(*traces[w], lint_options, workloads[w].display);
        }
        baselines[w] = replay(*traces[w], baseline_config);
      };
      if (!options.keep_going) {
        body(1);  // fail-fast: lint/replay errors propagate untouched
        workload_outcomes[w].ok = true;
        return;
      }
      workload_outcomes[w] = fault::run_guarded(options.retry, body);
    });
  }

  // Phase 2: the scenario fan-out. Each worker runs the pipeline on
  // private state and writes into its pre-allocated slot, so the merged
  // row/error order is the canonical grid order regardless of thread
  // count. Each cell runs under run_guarded: transient failures (e.g.
  // injected scenario_flaky faults) retry with deterministic simulated
  // backoff; persistent failures quarantine the cell when keep_going is
  // set and abort the sweep with cell context otherwise.
  std::vector<fault::GuardOutcome> cell_outcomes(scenarios.size());
  {
    ProgressMonitor progress(options.progress_stream,
                             options.progress_interval_seconds,
                             owned_cells, completed, completed.value());
    PALS_SPAN("sweep.scenarios", span_reg);
    // Durably journal one terminal record. Appends are serialized: the
    // journal is append-only and fsync'd per record, so at most one
    // in-flight record can be torn by a crash — exactly what
    // read_journal's tail-drop repairs.
    const auto journal_append = [&](const JournalRecord& record) {
      if (!journal.has_value()) return;
      std::lock_guard<std::mutex> lock(journal_mutex);
      journal->append(record);
      reg.counter("journal.records_appended").add(1);
      if (options.on_journal_record)
        options.on_journal_record(journal->records_appended());
    };
    const auto run_cell = [&](std::size_t i) {
      if (owned[i] == 0) return;  // another shard's cell (docs/sharding.md)
      if (done[i] != 0) {
        // Resumed from the journal: the slot is already terminal.
        completed.add(1);
        return;
      }
      const Scenario& s = scenarios[i];
      const std::size_t w = scenario_workload[i];
      if (workload_skipped[w] != 0 ||
          (cancel != nullptr && cancel->load(std::memory_order_relaxed))) {
        // Cancelled before this cell started; a later --resume run
        // re-executes it (it was never journaled as terminal).
        skipped.fetch_add(1, std::memory_order_relaxed);
        completed.add(1);
        return;
      }
      const auto scenario_start = Clock::now();
      PALS_SPAN_DETAIL("sweep.scenario", span_reg,
                       workloads[w].display + " " + s.variant_label());
      const auto record_error = [&](const fault::GuardOutcome& outcome) {
        error_slots[i] = ScenarioError{
            i, workloads[w].display, s.variant_label(), outcome.error_class,
            outcome.attempts, outcome.retries, outcome.backoff_seconds,
            outcome.message};
      };
      const auto journal_cell = [&] {
        if (!journal.has_value()) return;
        JournalRecord record;
        record.index = i;
        if (row_ok[i] != 0) {
          record.kind = JournalRecord::Kind::kRow;
          record.row = row_slots[i];
        } else {
          const ScenarioError& e = *error_slots[i];
          record.kind = JournalRecord::Kind::kError;
          record.workload = e.workload;
          record.variant = e.variant;
          record.error_class = fault::to_string(e.error_class);
          record.attempts = e.attempts;
          record.retries = e.retries;
          record.backoff_seconds = e.backoff_seconds;
          record.message = e.message;
        }
        journal_append(record);
      };
      if (!workload_outcomes[w].ok) {
        // keep_going only (fail-fast threw in phase 1): the workload's
        // lint/baseline failure quarantines each of its cells.
        record_error(workload_outcomes[w]);
        journal_cell();
        completed.add(1);
        return;
      }
      // The cell's pipeline configuration, shared verbatim between the
      // replay and the bounds analyzer so both describe the same run.
      const auto make_config = [&] {
        PipelineConfig config = options.base;
        config.algorithm.algorithm = s.algorithm;
        config.algorithm.gear_set = scenario_gears[i];
        config.controller.kind = scenario_controllers[i];
        config.lint = false;  // each workload was already linted in phase 1
        config.replay.faults = faults;
        if (options.cell_timeout_seconds > 0.0)
          config.replay.max_wall_seconds = options.cell_timeout_seconds;
        set_beta(config, s.beta);
        return config;
      };
      // Static intervals, computed once and reused by the pruner and the
      // oracle. A throw here is an analyzer bug and aborts the sweep even
      // under keep_going — silently degrading the soundness contract
      // would hide exactly the failures the oracle exists to catch.
      std::optional<bounds::ScenarioBounds> cell_bounds;
      if (prune_enabled || oracle_armed)
        cell_bounds = bounds::analyze(*traces[w], make_config(),
                                      &baselines[w]);
      if (prune_enabled && cell_bounds->normalized) {
        // Candidate dominators are completed earlier cells of the same
        // workload: the pruning fan-out runs a workload's cells serially
        // in canonical order, so row_ok[j] is settled for every j < i of
        // this group (including cells pre-filled by --resume), and the
        // decision is identical at any jobs count.
        ExperimentRow optimistic;
        optimistic.instance = workloads[w].display;
        optimistic.normalized_time = cell_bounds->normalized_time.lo;
        optimistic.normalized_energy = cell_bounds->normalized_energy.lo;
        for (std::size_t j = 0; j < i; ++j) {
          if (scenario_workload[j] != w || row_ok[j] == 0) continue;
          if (!dominates(row_slots[j], optimistic)) continue;
          // Even the cell's best case is beaten outright: the replay can
          // not land on the Pareto front, so skip it with provenance.
          PrunedCell cell{i,
                          workloads[w].display,
                          s.variant_label(),
                          optimistic.normalized_time,
                          optimistic.normalized_energy,
                          j,
                          scenarios[j].variant_label()};
          pruned_slots[i] = std::move(cell);
          reg.counter("sweep.cells_pruned").add(1);
          JournalRecord record;
          record.kind = JournalRecord::Kind::kPruned;
          record.index = i;
          record.workload = pruned_slots[i]->workload;
          record.variant = pruned_slots[i]->variant;
          record.lb_normalized_time = pruned_slots[i]->lb_normalized_time;
          record.lb_normalized_energy = pruned_slots[i]->lb_normalized_energy;
          record.dominated_by = j;
          journal_append(record);
          completed.add(1);
          return;
        }
      }
      const auto body = [&](int attempt) {
        if (faults != nullptr) {
          if (faults->scenario_crashed(i))
            throw Error("injected scenario crash (scenario_crash, cell " +
                        std::to_string(i) + ")");
          if (attempt <= faults->scenario_transient_failures(i))
            throw fault::TransientError(
                "injected transient fault (scenario_flaky, cell " +
                std::to_string(i) + ", attempt " + std::to_string(attempt) +
                ")");
        }
        const PipelineResult pipeline =
            run_pipeline(*traces[w], make_config(), baselines[w]);
        if (oracle_armed) {
          const std::vector<lint::Diagnostic> violations =
              bounds::check_soundness(*cell_bounds, pipeline.scaled_time,
                                      pipeline.scaled_energy);
          if (!violations.empty()) {
            std::string text = "bounds soundness oracle: ";
            for (std::size_t k = 0; k < violations.size(); ++k) {
              if (k > 0) text += "; ";
              text += violations[k].to_text();
            }
            throw Error(text);
          }
        }
        row_slots[i] = flatten_result(pipeline, workloads[w].display,
                                      s.variant_label());
      };
      if (!options.keep_going && faults == nullptr &&
          options.cell_timeout_seconds <= 0.0) {
        body(1);  // fail-fast: scenario errors propagate untouched
        cell_outcomes[i].ok = true;
      } else {
        // Guarded also when a watchdog is armed, so an expired cell is
        // classified (kTimeout) like any other fault.
        cell_outcomes[i] = fault::run_guarded(options.retry, body);
      }
      const fault::GuardOutcome& outcome = cell_outcomes[i];
      if (outcome.ok) {
        row_ok[i] = 1;
        second_slots[i] = seconds_since(scenario_start);
        journal_cell();
      } else if (options.keep_going) {
        record_error(outcome);
        journal_cell();
      } else {
        completed.add(1);
        throw Error("sweep scenario " + std::to_string(i) + " (" +
                    workloads[w].display + " " + s.variant_label() +
                    ") failed: " + outcome.describe());
      }
      completed.add(1);
    };
    if (prune_enabled) {
      // Pruning needs earlier cells of the workload to be terminal before
      // later ones are judged, so parallelism moves up a level: workload
      // groups fan out across the pool, cells inside a group run serially
      // in canonical order. Scenario order within a group — and therefore
      // every prune decision — is independent of the thread count.
      std::vector<std::vector<std::size_t>> groups(workloads.size());
      for (std::size_t i = 0; i < scenarios.size(); ++i)
        groups[scenario_workload[i]].push_back(i);
      pool.parallel_for(groups.size(), [&](std::size_t g) {
        for (const std::size_t i : groups[g]) run_cell(i);
      });
    } else {
      pool.parallel_for(scenarios.size(), run_cell);
    }
  }
  obs::record_thread_pool(pool.stats(), reg);
  heartbeat.reset();  // join the beater; heartbeats_written is now settled

  // Merge the slots in canonical order: successes into rows, failures
  // into errors. Without faults and with healthy workloads every slot is
  // a success and the output matches the pre-fault engine exactly.
  SweepResult result;
  result.rows.reserve(scenarios.size());
  result.scenario_seconds.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (row_ok[i] != 0) {
      result.rows.push_back(std::move(row_slots[i]));
      result.scenario_seconds.push_back(second_slots[i]);
    } else if (error_slots[i].has_value()) {
      result.errors.push_back(std::move(*error_slots[i]));
    } else if (pruned_slots[i].has_value()) {
      result.pruned.push_back(std::move(*pruned_slots[i]));
    }
  }

  SweepStats& stats = result.stats;
  stats.scenarios = scenarios.size();
  stats.workloads = workloads.size();
  stats.jobs = pool.size();
  stats.wall_seconds = seconds_since(sweep_start);
  stats.scenarios_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.scenarios) / stats.wall_seconds
          : 0.0;
  stats.baseline_cache_misses = baselines_needed;
  stats.baseline_cache_hits = scenarios.size() - workloads.size();
  stats.baseline_cache_hit_rate =
      static_cast<double>(stats.baseline_cache_hits) /
      static_cast<double>(stats.scenarios);
  for (const double s : result.scenario_seconds) {
    stats.scenario_seconds_total += s;
    stats.scenario_seconds_max = std::max(stats.scenario_seconds_max, s);
  }
  stats.quarantined = result.errors.size();
  for (const fault::GuardOutcome& outcome : workload_outcomes) {
    stats.transient_retries += static_cast<std::size_t>(outcome.retries);
    stats.backoff_seconds += outcome.backoff_seconds;
  }
  for (const fault::GuardOutcome& outcome : cell_outcomes) {
    stats.transient_retries += static_cast<std::size_t>(outcome.retries);
    stats.backoff_seconds += outcome.backoff_seconds;
  }
  stats.resumed_cells = resumed_cells;
  stats.skipped_cells = skipped.load();
  stats.pruned_cells = result.pruned.size();
  stats.shard_cells_owned = owned_cells;
  stats.shard_cells_foreign = scenarios.size() - owned_cells;
  stats.heartbeats_written = heartbeats_written;
  stats.journal_records = journal.has_value() ? journal->records_appended() : 0;
  result.interrupted = stats.skipped_cells > 0;
  if (faults != nullptr || options.keep_going) {
    // Only touched on the fault-tolerant path so fault-free sweeps keep
    // their exact metric snapshots. The added values are deterministic.
    reg.counter("fault.scenario_retries").add(stats.transient_retries);
    reg.counter("fault.cells_quarantined").add(stats.quarantined);
  }
  return result;
}

SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options) {
  SweepOptions resolved = options;
  resolved.iterations = grid.iterations;
  return run_sweep(grid.expand(), resolved);
}

std::string errors_to_csv(const std::vector<ScenarioError>& errors) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"index", "workload", "variant", "class", "attempts", "retries",
           "backoff_seconds", "message"});
  for (const ScenarioError& e : errors) {
    std::string message = e.message;
    std::replace(message.begin(), message.end(), '\n', ';');
    csv.field(e.index)
        .field(e.workload)
        .field(e.variant)
        .field(fault::to_string(e.error_class))
        .field(static_cast<long long>(e.attempts))
        .field(static_cast<long long>(e.retries))
        .field(e.backoff_seconds)
        .field(message);
    csv.end_row();
  }
  return out.str();
}

void write_errors_csv(const std::vector<ScenarioError>& errors,
                      const std::string& path) {
  atomic_write_file(path, errors_to_csv(errors));
}

std::string pruned_to_csv(const std::vector<PrunedCell>& pruned) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"index", "workload", "variant", "lb_normalized_time",
           "lb_normalized_energy", "dominated_by", "dominated_by_variant"});
  for (const PrunedCell& p : pruned) {
    csv.field(p.index)
        .field(p.workload)
        .field(p.variant)
        .field(p.lb_normalized_time)
        .field(p.lb_normalized_energy)
        .field(static_cast<long long>(p.dominated_by))
        .field(p.dominated_by_variant);
    csv.end_row();
  }
  return out.str();
}

void write_pruned_csv(const std::vector<PrunedCell>& pruned,
                      const std::string& path) {
  atomic_write_file(path, pruned_to_csv(pruned));
}

}  // namespace pals
