#include "analysis/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "lint/lint.hpp"
#include "power/gearset.hpp"
#include "replay/replay.hpp"
#include "util/error.hpp"
#include "util/kvconfig.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace pals {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Algorithm algorithm_by_name(const std::string& name) {
  if (name == "max") return Algorithm::kMax;
  if (name == "avg") return Algorithm::kAvg;
  if (name == "energy-optimal") return Algorithm::kEnergyOptimalMax;
  throw Error("unknown algorithm '" + name +
              "' (try max, avg, energy-optimal)");
}

/// A resolved workload: cache key, display name and trace builder.
struct WorkloadRef {
  std::string key;
  std::string display;
  std::function<Trace()> build;
};

WorkloadRef resolve_workload(const std::string& spec, int default_iterations) {
  if (spec.find(':') == std::string::npos) {
    const auto instance = benchmark_by_name(spec, default_iterations);
    PALS_CHECK_MSG(instance.has_value(),
                   "unknown workload '"
                       << spec
                       << "' (not a Table 3 instance; inline specs use "
                          "family:ranks:lb[:iterations])");
    return WorkloadRef{spec, spec,
                       [inst = *instance] { return inst.make(); }};
  }
  const std::vector<std::string> parts = split(spec, ':');
  PALS_CHECK_MSG(parts.size() == 3 || parts.size() == 4,
                 "bad workload spec '" << spec
                                       << "' (family:ranks:lb[:iterations])");
  WorkloadConfig config;
  config.ranks = static_cast<Rank>(parse_int(parts[1]));
  config.target_lb = parse_double(parts[2]);
  config.iterations =
      parts.size() == 4 ? static_cast<int>(parse_int(parts[3]))
                        : default_iterations;
  PALS_CHECK_MSG(config.ranks > 0, "workload spec '" << spec
                                                     << "': ranks must be > 0");
  PALS_CHECK_MSG(config.target_lb > 0.0 && config.target_lb <= 1.0,
                 "workload spec '" << spec << "': lb must be in (0, 1]");
  PALS_CHECK_MSG(config.iterations > 0,
                 "workload spec '" << spec << "': iterations must be > 0");
  const std::string family = parts[0];
  const auto factory = workload_factory(family);  // throws on unknown family
  // Canonical key includes the resolved iteration count so grids with
  // different defaults never collide in a shared cache.
  const std::string key = parts.size() == 4
                              ? spec
                              : spec + ":" + std::to_string(config.iterations);
  return WorkloadRef{key, family + "-" + parts[1],
                     [factory, config] { return factory(config); }};
}

std::vector<double> parse_beta_list(const std::string& text) {
  std::vector<double> betas;
  for (const std::string& field : split(text, ','))
    betas.push_back(parse_double(trim(field)));
  return betas;
}

std::vector<std::string> parse_name_list(const std::string& text) {
  std::vector<std::string> names;
  for (const std::string& field : split(text, ','))
    names.emplace_back(trim(field));
  return names;
}

}  // namespace

std::string Scenario::variant_label() const {
  if (!label.empty()) return label;
  std::string derived;
  switch (algorithm) {
    case Algorithm::kMax: break;  // the paper's default; no prefix
    case Algorithm::kAvg: derived += "AVG "; break;
    case Algorithm::kEnergyOptimalMax: derived += "EOPT "; break;
  }
  derived += gear_set;
  if (beta != 0.5) derived += " beta=" + format_fixed(beta, 2);
  return derived;
}

SweepGrid SweepGrid::from_file(const std::string& path) {
  const KvConfig kv = KvConfig::parse_file(path);
  kv.require_known_keys(
      {"workloads", "gear_sets", "algorithms", "betas", "iterations"});
  SweepGrid grid;
  grid.workloads = parse_name_list(kv.get_string("workloads"));
  grid.gear_sets = parse_name_list(kv.get_string("gear_sets"));
  if (kv.has("algorithms")) {
    grid.algorithms.clear();
    for (const std::string& name : parse_name_list(kv.get_string("algorithms")))
      grid.algorithms.push_back(algorithm_by_name(name));
  }
  if (kv.has("betas")) grid.betas = parse_beta_list(kv.get_string("betas"));
  grid.iterations =
      static_cast<int>(kv.get_int_or("iterations", grid.iterations));
  grid.validate();
  return grid;
}

void SweepGrid::validate() const {
  PALS_CHECK_MSG(!workloads.empty(), "sweep grid has no workloads");
  PALS_CHECK_MSG(!gear_sets.empty(), "sweep grid has no gear sets");
  PALS_CHECK_MSG(!algorithms.empty(), "sweep grid has no algorithms");
  PALS_CHECK_MSG(!betas.empty(), "sweep grid has no betas");
  PALS_CHECK_MSG(iterations > 0, "sweep grid iterations must be > 0");
  for (const double beta : betas)
    PALS_CHECK_MSG(beta > 0.0 && beta <= 1.0,
                   "sweep grid beta " << beta << " outside (0, 1]");
}

std::vector<Scenario> SweepGrid::expand() const {
  validate();
  std::vector<Scenario> scenarios;
  scenarios.reserve(workloads.size() * gear_sets.size() * algorithms.size() *
                    betas.size());
  for (const std::string& workload : workloads)
    for (const std::string& gear_set : gear_sets)
      for (const Algorithm algorithm : algorithms)
        for (const double beta : betas)
          scenarios.push_back(Scenario{workload, gear_set, algorithm, beta, ""});
  return scenarios;
}

std::string SweepStats::to_kv() const {
  std::string out;
  const auto put = [&out](const std::string& key, const std::string& value) {
    out += key + " = " + value + "\n";
  };
  put("scenarios", std::to_string(scenarios));
  put("workloads", std::to_string(workloads));
  put("jobs", std::to_string(jobs));
  put("wall_seconds", format_fixed(wall_seconds, 6));
  put("scenarios_per_second", format_fixed(scenarios_per_second, 6));
  put("baseline_cache_misses", std::to_string(baseline_cache_misses));
  put("baseline_cache_hits", std::to_string(baseline_cache_hits));
  put("baseline_cache_hit_rate", format_fixed(baseline_cache_hit_rate, 6));
  put("scenario_seconds_total", format_fixed(scenario_seconds_total, 6));
  put("scenario_seconds_max", format_fixed(scenario_seconds_max, 6));
  return out;
}

SweepResult run_sweep(const std::vector<Scenario>& scenarios,
                      const SweepOptions& options) {
  PALS_CHECK_MSG(!scenarios.empty(), "sweep has no scenarios");
  options.base.validate();
  const auto sweep_start = Clock::now();

  // Resolve everything serially up front so bad names fail with scenario
  // context before any thread spawns, and workers only do numeric work.
  std::vector<WorkloadRef> workloads;
  std::map<std::string, std::size_t> workload_index;
  std::vector<std::size_t> scenario_workload(scenarios.size());
  std::vector<GearSet> scenario_gears;
  scenario_gears.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    WorkloadRef ref = resolve_workload(s.workload, options.iterations);
    const auto [it, inserted] =
        workload_index.emplace(ref.key, workloads.size());
    if (inserted) workloads.push_back(std::move(ref));
    scenario_workload[i] = it->second;
    scenario_gears.push_back(gear_set_by_name(s.gear_set));
  }

  TraceCache private_cache;
  TraceCache& cache =
      options.trace_cache ? *options.trace_cache : private_cache;
  ThreadPool pool(options.jobs);

  // Phase 1: one trace + baseline replay per unique workload. The
  // baseline depends only on the trace and the platform, so every
  // scenario of the workload shares it. With the opt-in lint hook
  // (options.base.lint) each workload trace is statically verified here,
  // once, so a bad grid cell aborts with the full diagnostic report
  // before any replay starts.
  std::vector<const Trace*> traces(workloads.size());
  std::vector<ReplayResult> baselines(workloads.size());
  pool.parallel_for(workloads.size(), [&](std::size_t w) {
    traces[w] = &cache.get(workloads[w].key, workloads[w].build);
    if (options.base.lint) {
      lint::LintOptions lint_options;
      lint_options.eager_threshold =
          options.base.replay.platform.eager_threshold;
      lint::enforce_lint(*traces[w], lint_options, workloads[w].display);
    }
    baselines[w] = replay(*traces[w], options.base.replay);
  });

  // Phase 2: the scenario fan-out. Each worker runs the pipeline on
  // private state and writes into its pre-allocated slot, so the merged
  // row order is the canonical grid order regardless of thread count.
  SweepResult result;
  result.rows.resize(scenarios.size());
  result.scenario_seconds.resize(scenarios.size());
  pool.parallel_for(scenarios.size(), [&](std::size_t i) {
    const auto scenario_start = Clock::now();
    const Scenario& s = scenarios[i];
    const std::size_t w = scenario_workload[i];
    PipelineConfig config = options.base;
    config.algorithm.algorithm = s.algorithm;
    config.algorithm.gear_set = scenario_gears[i];
    config.lint = false;  // each workload was already linted in phase 1
    set_beta(config, s.beta);
    result.rows[i] = run_experiment(*traces[w], baselines[w],
                                    workloads[w].display, s.variant_label(),
                                    config);
    result.scenario_seconds[i] = seconds_since(scenario_start);
  });

  SweepStats& stats = result.stats;
  stats.scenarios = scenarios.size();
  stats.workloads = workloads.size();
  stats.jobs = pool.size();
  stats.wall_seconds = seconds_since(sweep_start);
  stats.scenarios_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.scenarios) / stats.wall_seconds
          : 0.0;
  stats.baseline_cache_misses = workloads.size();
  stats.baseline_cache_hits = scenarios.size() - workloads.size();
  stats.baseline_cache_hit_rate =
      static_cast<double>(stats.baseline_cache_hits) /
      static_cast<double>(stats.scenarios);
  for (const double s : result.scenario_seconds) {
    stats.scenario_seconds_total += s;
    stats.scenario_seconds_max = std::max(stats.scenario_seconds_max, s);
  }
  return result;
}

SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options) {
  SweepOptions resolved = options;
  resolved.iterations = grid.iterations;
  return run_sweep(grid.expand(), resolved);
}

}  // namespace pals
