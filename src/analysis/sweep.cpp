#include "analysis/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "lint/lint.hpp"
#include "obs/record.hpp"
#include "obs/span.hpp"
#include "power/gearset.hpp"
#include "replay/replay.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/kvconfig.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace pals {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Background reporter for SweepOptions::progress_stream: wakes every
/// interval, reads the completion counter and prints one whole line.
/// Joined (with a final line) before run_sweep returns.
class ProgressMonitor {
 public:
  ProgressMonitor(std::ostream* out, double interval_seconds,
                  std::size_t total, const obs::Counter& completed,
                  std::uint64_t baseline)
      : out_(out), total_(total), completed_(completed), baseline_(baseline) {
    if (out_ == nullptr) return;
    start_ = Clock::now();
    thread_ = std::thread([this, interval_seconds] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!done_) {
        stop_.wait_for(lock,
                       std::chrono::duration<double>(interval_seconds));
        if (done_) break;
        print_line();
      }
    });
  }

  ~ProgressMonitor() {
    if (out_ == nullptr) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    stop_.notify_all();
    thread_.join();
    print_line();  // final "N/N" line
  }

  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

 private:
  void print_line() {
    const std::uint64_t done = completed_.value() - baseline_;
    const double elapsed = seconds_since(start_);
    std::string line = "sweep: " + std::to_string(done) + "/" +
                       std::to_string(total_) + " scenarios, elapsed " +
                       format_fixed(elapsed, 1) + "s";
    if (done > 0 && done < total_) {
      const double eta =
          elapsed / static_cast<double>(done) *
          static_cast<double>(total_ - done);
      line += ", ETA " + format_fixed(eta, 1) + "s";
    }
    line += '\n';
    out_->write(line.data(), static_cast<std::streamsize>(line.size()));
    out_->flush();
  }

  std::ostream* out_;
  std::size_t total_;
  const obs::Counter& completed_;
  std::uint64_t baseline_;
  Clock::time_point start_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable stop_;
  bool done_ = false;
};

std::vector<double> parse_beta_list(const std::string& text) {
  std::vector<double> betas;
  for (const std::string& field : split(text, ','))
    betas.push_back(parse_double(trim(field)));
  return betas;
}

std::vector<std::string> parse_name_list(const std::string& text) {
  std::vector<std::string> names;
  for (const std::string& field : split(text, ','))
    names.emplace_back(trim(field));
  return names;
}

}  // namespace

Algorithm algorithm_by_name(const std::string& name) {
  if (name == "max") return Algorithm::kMax;
  if (name == "avg") return Algorithm::kAvg;
  if (name == "energy-optimal") return Algorithm::kEnergyOptimalMax;
  throw Error("unknown algorithm '" + name +
              "' (try max, avg, energy-optimal)");
}

std::string Scenario::variant_label() const {
  if (!label.empty()) return label;
  std::string derived;
  switch (algorithm) {
    case Algorithm::kMax: break;  // the paper's default; no prefix
    case Algorithm::kAvg: derived += "AVG "; break;
    case Algorithm::kEnergyOptimalMax: derived += "EOPT "; break;
  }
  derived += gear_set;
  if (beta != 0.5) derived += " beta=" + format_fixed(beta, 2);
  return derived;
}

SweepGrid SweepGrid::from_file(const std::string& path) {
  const KvConfig kv = KvConfig::parse_file(path);
  kv.require_known_keys(
      {"workloads", "gear_sets", "algorithms", "betas", "iterations"});
  SweepGrid grid;
  grid.workloads = parse_name_list(kv.get_string("workloads"));
  grid.gear_sets = parse_name_list(kv.get_string("gear_sets"));
  if (kv.has("algorithms")) {
    grid.algorithms.clear();
    for (const std::string& name : parse_name_list(kv.get_string("algorithms")))
      grid.algorithms.push_back(algorithm_by_name(name));
  }
  if (kv.has("betas")) grid.betas = parse_beta_list(kv.get_string("betas"));
  grid.iterations =
      static_cast<int>(kv.get_int_or("iterations", grid.iterations));
  grid.validate();
  return grid;
}

void SweepGrid::validate() const {
  PALS_CHECK_MSG(!workloads.empty(), "sweep grid has no workloads");
  PALS_CHECK_MSG(!gear_sets.empty(), "sweep grid has no gear sets");
  PALS_CHECK_MSG(!algorithms.empty(), "sweep grid has no algorithms");
  PALS_CHECK_MSG(!betas.empty(), "sweep grid has no betas");
  PALS_CHECK_MSG(iterations > 0, "sweep grid iterations must be > 0");
  for (const double beta : betas)
    PALS_CHECK_MSG(beta > 0.0 && beta <= 1.0,
                   "sweep grid beta " << beta << " outside (0, 1]");
}

std::vector<Scenario> SweepGrid::expand() const {
  validate();
  std::vector<Scenario> scenarios;
  scenarios.reserve(workloads.size() * gear_sets.size() * algorithms.size() *
                    betas.size());
  for (const std::string& workload : workloads)
    for (const std::string& gear_set : gear_sets)
      for (const Algorithm algorithm : algorithms)
        for (const double beta : betas)
          scenarios.push_back(Scenario{workload, gear_set, algorithm, beta, ""});
  return scenarios;
}

std::string ScenarioError::describe() const {
  std::string out = "cell " + std::to_string(index) + " " + workload;
  if (!variant.empty()) out += " [" + variant + "]";
  out += ": " + fault::to_string(error_class);
  if (retries > 0) out += " after " + std::to_string(attempts) + " attempts";
  out += ": " + message;
  return out;
}

std::string SweepStats::to_kv() const {
  std::string out;
  const auto put = [&out](const std::string& key, const std::string& value) {
    out += key + " = " + value + "\n";
  };
  put("scenarios", std::to_string(scenarios));
  put("workloads", std::to_string(workloads));
  put("jobs", std::to_string(jobs));
  put("wall_seconds", format_fixed(wall_seconds, 6));
  put("scenarios_per_second", format_fixed(scenarios_per_second, 6));
  put("baseline_cache_misses", std::to_string(baseline_cache_misses));
  put("baseline_cache_hits", std::to_string(baseline_cache_hits));
  put("baseline_cache_hit_rate", format_fixed(baseline_cache_hit_rate, 6));
  put("scenario_seconds_total", format_fixed(scenario_seconds_total, 6));
  put("scenario_seconds_max", format_fixed(scenario_seconds_max, 6));
  put("quarantined", std::to_string(quarantined));
  put("transient_retries", std::to_string(transient_retries));
  put("backoff_seconds", format_fixed(backoff_seconds, 6));
  return out;
}

SweepResult run_sweep(const std::vector<Scenario>& scenarios,
                      const SweepOptions& options) {
  PALS_CHECK_MSG(!scenarios.empty(), "sweep has no scenarios");
  options.base.validate();
  const auto sweep_start = Clock::now();
  obs::Registry& reg = obs::default_registry();
  obs::Registry* span_reg = options.base.observe ? &reg : nullptr;
  reg.counter("sweep.runs").add(1);
  reg.counter("sweep.scenarios").add(scenarios.size());

  // Resolve everything serially up front so bad names fail with scenario
  // context before any thread spawns, and workers only do numeric work.
  std::vector<WorkloadRef> workloads;
  std::map<std::string, std::size_t> workload_index;
  std::vector<std::size_t> scenario_workload(scenarios.size());
  std::vector<GearSet> scenario_gears;
  scenario_gears.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    WorkloadRef ref = resolve_workload(s.workload, options.iterations);
    const auto [it, inserted] =
        workload_index.emplace(ref.key, workloads.size());
    if (inserted) workloads.push_back(std::move(ref));
    scenario_workload[i] = it->second;
    scenario_gears.push_back(gear_set_by_name(s.gear_set));
  }

  TraceCache private_cache;
  TraceCache& cache =
      options.trace_cache ? *options.trace_cache : private_cache;
  ThreadPool pool(options.jobs);

  // The fault injector (if any) rides through PipelineConfig::replay so
  // baseline and scaled replays both see the perturbed machine.
  const fault::Injector* faults =
      options.faults != nullptr ? options.faults : options.base.replay.faults;
  ReplayConfig baseline_config = options.base.replay;
  baseline_config.faults = faults;

  // Phase 1: one trace + baseline replay per unique workload. The
  // baseline depends only on the trace and the platform, so every
  // scenario of the workload shares it. With the opt-in lint hook
  // (options.base.lint) each workload trace is statically verified here,
  // once. Without keep_going a bad workload aborts the sweep with the
  // full diagnostic report before any scenario runs; with keep_going the
  // failure is recorded per workload and only that workload's cells are
  // quarantined — independent workloads still produce results.
  reg.counter("sweep.baseline_replays").add(workloads.size());
  std::vector<const Trace*> traces(workloads.size());
  std::vector<ReplayResult> baselines(workloads.size());
  std::vector<fault::GuardOutcome> workload_outcomes(workloads.size());
  {
    PALS_SPAN("sweep.baselines", span_reg);
    pool.parallel_for(workloads.size(), [&](std::size_t w) {
      PALS_SPAN_DETAIL("sweep.baseline", span_reg, workloads[w].display);
      const auto body = [&](int) {
        traces[w] = &cache.get(workloads[w].key, workloads[w].build);
        if (options.base.lint) {
          lint::LintOptions lint_options;
          lint_options.eager_threshold =
              options.base.replay.platform.eager_threshold;
          lint::enforce_lint(*traces[w], lint_options, workloads[w].display);
        }
        baselines[w] = replay(*traces[w], baseline_config);
      };
      if (!options.keep_going) {
        body(1);  // fail-fast: lint/replay errors propagate untouched
        workload_outcomes[w].ok = true;
        return;
      }
      workload_outcomes[w] = fault::run_guarded(options.retry, body);
    });
  }

  // Phase 2: the scenario fan-out. Each worker runs the pipeline on
  // private state and writes into its pre-allocated slot, so the merged
  // row/error order is the canonical grid order regardless of thread
  // count. Each cell runs under run_guarded: transient failures (e.g.
  // injected scenario_flaky faults) retry with deterministic simulated
  // backoff; persistent failures quarantine the cell when keep_going is
  // set and abort the sweep with cell context otherwise.
  std::vector<ExperimentRow> row_slots(scenarios.size());
  std::vector<double> second_slots(scenarios.size(), 0.0);
  std::vector<char> row_ok(scenarios.size(), 0);
  std::vector<std::optional<ScenarioError>> error_slots(scenarios.size());
  std::vector<fault::GuardOutcome> cell_outcomes(scenarios.size());
  obs::Counter& completed = reg.counter("sweep.scenarios_completed");
  {
    ProgressMonitor progress(options.progress_stream,
                             options.progress_interval_seconds,
                             scenarios.size(), completed, completed.value());
    PALS_SPAN("sweep.scenarios", span_reg);
    pool.parallel_for(scenarios.size(), [&](std::size_t i) {
      const auto scenario_start = Clock::now();
      const Scenario& s = scenarios[i];
      const std::size_t w = scenario_workload[i];
      PALS_SPAN_DETAIL("sweep.scenario", span_reg,
                       workloads[w].display + " " + s.variant_label());
      const auto record_error = [&](const fault::GuardOutcome& outcome) {
        error_slots[i] = ScenarioError{
            i, workloads[w].display, s.variant_label(), outcome.error_class,
            outcome.attempts, outcome.retries, outcome.backoff_seconds,
            outcome.message};
      };
      if (!workload_outcomes[w].ok) {
        // keep_going only (fail-fast threw in phase 1): the workload's
        // lint/baseline failure quarantines each of its cells.
        record_error(workload_outcomes[w]);
        completed.add(1);
        return;
      }
      const auto body = [&](int attempt) {
        if (faults != nullptr) {
          if (faults->scenario_crashed(i))
            throw Error("injected scenario crash (scenario_crash, cell " +
                        std::to_string(i) + ")");
          if (attempt <= faults->scenario_transient_failures(i))
            throw fault::TransientError(
                "injected transient fault (scenario_flaky, cell " +
                std::to_string(i) + ", attempt " + std::to_string(attempt) +
                ")");
        }
        PipelineConfig config = options.base;
        config.algorithm.algorithm = s.algorithm;
        config.algorithm.gear_set = scenario_gears[i];
        config.lint = false;  // each workload was already linted in phase 1
        config.replay.faults = faults;
        set_beta(config, s.beta);
        row_slots[i] = run_experiment(*traces[w], baselines[w],
                                      workloads[w].display, s.variant_label(),
                                      config);
      };
      if (!options.keep_going && faults == nullptr) {
        body(1);  // fail-fast: scenario errors propagate untouched
        cell_outcomes[i].ok = true;
      } else {
        cell_outcomes[i] = fault::run_guarded(options.retry, body);
      }
      const fault::GuardOutcome& outcome = cell_outcomes[i];
      if (outcome.ok) {
        row_ok[i] = 1;
        second_slots[i] = seconds_since(scenario_start);
      } else if (options.keep_going) {
        record_error(outcome);
      } else {
        completed.add(1);
        throw Error("sweep scenario " + std::to_string(i) + " (" +
                    workloads[w].display + " " + s.variant_label() +
                    ") failed: " + outcome.describe());
      }
      completed.add(1);
    });
  }
  obs::record_thread_pool(pool.stats(), reg);

  // Merge the slots in canonical order: successes into rows, failures
  // into errors. Without faults and with healthy workloads every slot is
  // a success and the output matches the pre-fault engine exactly.
  SweepResult result;
  result.rows.reserve(scenarios.size());
  result.scenario_seconds.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (row_ok[i] != 0) {
      result.rows.push_back(std::move(row_slots[i]));
      result.scenario_seconds.push_back(second_slots[i]);
    } else if (error_slots[i].has_value()) {
      result.errors.push_back(std::move(*error_slots[i]));
    }
  }

  SweepStats& stats = result.stats;
  stats.scenarios = scenarios.size();
  stats.workloads = workloads.size();
  stats.jobs = pool.size();
  stats.wall_seconds = seconds_since(sweep_start);
  stats.scenarios_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.scenarios) / stats.wall_seconds
          : 0.0;
  stats.baseline_cache_misses = workloads.size();
  stats.baseline_cache_hits = scenarios.size() - workloads.size();
  stats.baseline_cache_hit_rate =
      static_cast<double>(stats.baseline_cache_hits) /
      static_cast<double>(stats.scenarios);
  for (const double s : result.scenario_seconds) {
    stats.scenario_seconds_total += s;
    stats.scenario_seconds_max = std::max(stats.scenario_seconds_max, s);
  }
  stats.quarantined = result.errors.size();
  for (const fault::GuardOutcome& outcome : workload_outcomes) {
    stats.transient_retries += static_cast<std::size_t>(outcome.retries);
    stats.backoff_seconds += outcome.backoff_seconds;
  }
  for (const fault::GuardOutcome& outcome : cell_outcomes) {
    stats.transient_retries += static_cast<std::size_t>(outcome.retries);
    stats.backoff_seconds += outcome.backoff_seconds;
  }
  if (faults != nullptr || options.keep_going) {
    // Only touched on the fault-tolerant path so fault-free sweeps keep
    // their exact metric snapshots. The added values are deterministic.
    reg.counter("fault.scenario_retries").add(stats.transient_retries);
    reg.counter("fault.cells_quarantined").add(stats.quarantined);
  }
  return result;
}

SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options) {
  SweepOptions resolved = options;
  resolved.iterations = grid.iterations;
  return run_sweep(grid.expand(), resolved);
}

std::string errors_to_csv(const std::vector<ScenarioError>& errors) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"index", "workload", "variant", "class", "attempts", "retries",
           "backoff_seconds", "message"});
  for (const ScenarioError& e : errors) {
    std::string message = e.message;
    std::replace(message.begin(), message.end(), '\n', ';');
    csv.field(e.index)
        .field(e.workload)
        .field(e.variant)
        .field(fault::to_string(e.error_class))
        .field(static_cast<long long>(e.attempts))
        .field(static_cast<long long>(e.retries))
        .field(e.backoff_seconds)
        .field(message);
    csv.end_row();
  }
  return out.str();
}

void write_errors_csv(const std::vector<ScenarioError>& errors,
                      const std::string& path) {
  std::ofstream out(path);
  PALS_CHECK_MSG(out.good(), "cannot open " << path);
  out << errors_to_csv(errors);
  PALS_CHECK_MSG(out.good(), "write failure on " << path);
}

}  // namespace pals
