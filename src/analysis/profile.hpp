// Pipeline profiling harness shared by tools/pals_profile and
// bench/bench_replay_profile.
//
// Runs the full power-analysis pipeline repeatedly (optionally across a
// thread pool), with observability forced on, and reduces the metric and
// span deltas into a throughput report: pipelines/sec, simulated
// events/sec and the per-phase wall-clock breakdown. The same report
// serializes to the BENCH_replay.json format consumed by the bench
// harness (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "core/pipeline.hpp"
#include "power/gearset.hpp"
#include "util/thread_pool.hpp"

namespace pals {

struct ProfileOptions {
  /// Pipeline repetitions; > 1 turns the run into a throughput
  /// measurement (every repetition computes identical results).
  int repeat = 1;
  /// Thread-pool width for the repetitions (0 = hardware concurrency).
  int jobs = 1;
  PipelineConfig config = default_pipeline_config(paper_uniform(6));
};

/// Total wall-clock attributed to one span name across the profiled run.
struct PhaseProfile {
  std::string name;  ///< span name, e.g. "pipeline.scaled_replay"
  std::uint64_t count = 0;
  double seconds = 0.0;

  bool operator==(const PhaseProfile&) const = default;
};

struct ProfileReport {
  std::size_t pipelines = 0;         ///< pipeline executions (= repeat)
  std::size_t replays = 0;           ///< replay() calls in this run
  std::size_t simulated_events = 0;  ///< DES events across those replays
  int jobs = 1;
  double wall_seconds = 0.0;
  double pipelines_per_second = 0.0;  ///< a.k.a. scenarios per second
  double events_per_second = 0.0;
  /// Per-phase span totals (deltas over this run), sorted by name.
  std::vector<PhaseProfile> phases;
  ThreadPoolStats pool;
  /// Result of the first repetition (all repetitions are identical).
  PipelineResult result;

  /// The BENCH_replay.json payload: one flat JSON object with
  /// scenarios_per_second / events_per_second and the phase breakdown.
  std::string bench_json() const;
};

/// Profile `options.repeat` pipeline runs over `trace`. Forces
/// config.observe on; also mirrors thread-pool and trace-I/O stats into
/// obs::default_registry() so a subsequent snapshot carries them.
ProfileReport profile_pipeline(const Trace& trace,
                               const ProfileOptions& options);

}  // namespace pals
