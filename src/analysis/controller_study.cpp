#include "analysis/controller_study.hpp"

#include <utility>
#include <vector>

#include "analysis/experiments.hpp"
#include "core/controller_pipeline.hpp"
#include "core/controllers.hpp"
#include "power/controller.hpp"

namespace pals {

std::string controller_schedules_csv(const Trace& trace) {
  std::vector<std::pair<std::string, std::vector<std::vector<Gear>>>>
      schedules;
  for (const std::string& name : controller_names()) {
    PipelineConfig config = default_pipeline_config(paper_uniform(6));
    config.controller.kind = controller_by_name(name);
    ControllerPipelineResult result = run_controller_pipeline(trace, config);
    schedules.emplace_back(name, std::move(result.controller.schedule));
  }
  return schedules_to_csv(schedules);
}

}  // namespace pals
