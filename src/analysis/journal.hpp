// Durable run journal for crash-safe, resumable sweeps (docs/resume.md).
//
// A sweep that journals appends one fsync'd record per *terminal* grid
// cell — a successful result row or a quarantined error — to
// `<run-dir>/journal.palsj`. After a SIGKILL/OOM/^C, `pals_sweep
// --resume <run-dir>` replays the journal, pre-fills the completed
// cells' canonical slots and re-runs only the remainder, so the merged
// results.csv/errors.csv are byte-identical to an uninterrupted run at
// any --jobs count.
//
// File format (line-oriented text, append-only):
//
//   {"format":"pals-journal","version":1,"config_hash":"<fnv1a64>",
//    "scenarios":<N>}                                      <- header, JSON
//   R <index> <crc32> <csv payload of the result row>      <- per cell
//   E <index> <crc32> <csv payload of the quarantined error>
//   P <index> <crc32> <csv payload of the pruned cell>      <- --prune-bounds
//   H <seq> <crc32> <csv payload of a liveness heartbeat>   <- sharded runs
//
// Heartbeat records (docs/sharding.md) are *liveness* evidence, not cell
// outcomes: a sharded worker appends one every --heartbeat interval so
// the pals_shepherd supervisor can tell a slow shard from a hung one.
// Their index is a monotonically increasing sequence number, they carry
// host wall-clock time, and read_journal collects them separately — they
// never touch the per-cell slots, so resume and the merged CSVs stay
// byte-identical whether or not heartbeats were enabled.
//
// The checksum covers `<kind> <index> <payload>`; doubles are serialized
// with format_roundtrip (17 significant digits) so the resumed rows
// re-render byte-identical CSV. Newlines inside error messages are
// escaped (\n, \\) to keep one record per line.
//
// Corruption policy (read_journal): a torn *final* record — the only
// kind a crash between write and fsync can produce — is dropped and the
// cell re-runs (`tail_dropped`). Anything else that fails validation
// (bad header, checksum mismatch on an interior record, conflicting
// duplicates, out-of-range indices) throws a structured pals::Error:
// better to refuse a journal than to merge silently wrong rows.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "util/fsio.hpp"

namespace pals {

struct JournalHeader {
  int version = 1;
  /// Fingerprint of the scenario grid + sweep options (sweep_config_hash);
  /// resume refuses a journal whose hash does not match the live sweep.
  std::string config_hash;
  /// Canonical grid size; record indices must be < scenarios.
  std::size_t scenarios = 0;

  /// The single-line JSON document that heads the file.
  std::string to_json_line() const;
  /// Parse to_json_line() output; throws pals::Error on malformed or
  /// wrong-format headers.
  static JournalHeader from_json_line(const std::string& line);
};

/// One journaled terminal cell — or, for Kind::kHeartbeat, one liveness
/// beat of a sharded worker (never a cell outcome).
struct JournalRecord {
  enum class Kind { kRow, kError, kPruned, kHeartbeat };

  Kind kind = Kind::kRow;
  /// Canonical grid index (kRow/kError/kPruned) or the heartbeat
  /// sequence number (kHeartbeat).
  std::size_t index = 0;

  /// kind == kRow: the completed cell's result row.
  ExperimentRow row;

  /// kind == kError: the quarantined cell, mirrored from ScenarioError
  /// (analysis/sweep.hpp) field by field. error_class is kept as the
  /// fault::to_string spelling so the journal stays self-describing.
  /// workload/variant are shared with kind == kPruned.
  std::string workload;
  std::string variant;
  std::string error_class;
  int attempts = 1;
  int retries = 0;
  double backoff_seconds = 0.0;
  std::string message;

  /// kind == kPruned: a cell `pals_sweep --prune-bounds` skipped because
  /// its static lower-bound point was already Pareto-dominated by the
  /// completed cell `dominated_by` (docs/bounds.md). Stored at full
  /// precision so a resumed run re-derives the identical decision.
  double lb_normalized_time = 0.0;
  double lb_normalized_energy = 0.0;
  std::size_t dominated_by = 0;

  /// kind == kHeartbeat: the worker's shard label ("2/5", or "0/1" for
  /// an unsharded run), how many cells it had completed when the beat
  /// was written, and the host wall clock (Unix seconds). Host time is
  /// deliberately confined to this record kind — cell records must stay
  /// byte-identical across runs, heartbeats exist to carry liveness.
  std::string shard;
  std::size_t cells_done = 0;
  double unix_seconds = 0.0;

  /// Serialized record line (no trailing newline).
  std::string to_line() const;
};

/// Append-only journal writer; every append() is fsync'd before it
/// returns, so a record the caller observed is durable.
class JournalWriter {
 public:
  /// Start a fresh journal: the header is published atomically
  /// (atomic_write_file), so a crash during creation can never leave a
  /// header-less file.
  static JournalWriter create(const std::string& path,
                              const JournalHeader& header);
  /// Append to an existing (already validated) journal.
  static JournalWriter open_existing(const std::string& path);

  /// Durably append one record (write + fsync).
  void append(const JournalRecord& record);

  /// Records appended through this writer (excludes pre-existing ones).
  std::size_t records_appended() const { return appended_; }

 private:
  explicit JournalWriter(DurableFile file) : file_(std::move(file)) {}

  DurableFile file_;
  std::size_t appended_ = 0;
};

struct JournalReadReport {
  JournalHeader header;
  /// Validated *cell* records in file order, identical duplicates
  /// collapsed. Never contains heartbeats.
  std::vector<JournalRecord> records;
  /// Heartbeat records in file order (docs/sharding.md). Liveness
  /// evidence only: resume and the shard merge ignore them.
  std::vector<JournalRecord> heartbeats;
  /// A torn final record was dropped (crash mid-append); the affected
  /// cell simply re-runs.
  bool tail_dropped = false;
};

/// Read and validate a journal. Throws pals::Error naming the offending
/// line on structural corruption (see the policy above).
JournalReadReport read_journal(const std::string& path);

}  // namespace pals
