#include "network/platform.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pals {

Seconds PlatformModel::transfer_time(Bytes bytes) const {
  return static_cast<double>(bytes) / bandwidth;
}

Seconds PlatformModel::message_time(Bytes bytes) const {
  return latency + transfer_time(bytes);
}

void PlatformModel::validate() const {
  PALS_CHECK_MSG(latency >= 0.0, "latency must be non-negative");
  PALS_CHECK_MSG(bandwidth > 0.0, "bandwidth must be positive");
  PALS_CHECK_MSG(buses >= 0, "bus count must be non-negative");
  PALS_CHECK_MSG(links_per_node >= 0,
                 "links per node must be non-negative");
  PALS_CHECK_MSG(collective_scale > 0.0, "collective_scale must be positive");
}

std::string to_string(CollectiveAlgo algo) {
  switch (algo) {
    case CollectiveAlgo::kDefault: return "default";
    case CollectiveAlgo::kTree: return "tree";
    case CollectiveAlgo::kRing: return "ring";
    case CollectiveAlgo::kPairwise: return "pairwise";
  }
  throw Error("invalid CollectiveAlgo enum value");
}

CollectiveAlgo parse_collective_algo(const std::string& name) {
  if (name == "default") return CollectiveAlgo::kDefault;
  if (name == "tree") return CollectiveAlgo::kTree;
  if (name == "ring") return CollectiveAlgo::kRing;
  if (name == "pairwise") return CollectiveAlgo::kPairwise;
  throw Error("unknown collective algorithm: " + name);
}

Seconds collective_cost(const PlatformModel& platform, CollectiveOp op,
                        Rank n_ranks, Bytes bytes) {
  PALS_CHECK_MSG(n_ranks > 0, "collective over zero ranks");
  const double p = static_cast<double>(n_ranks);
  const double stages = n_ranks > 1 ? std::ceil(std::log2(p)) : 0.0;
  const Seconds msg = platform.message_time(bytes);

  CollectiveAlgo algo = CollectiveAlgo::kDefault;
  if (const auto it = platform.collective_algorithms.find(op);
      it != platform.collective_algorithms.end())
    algo = it->second;

  Seconds cost = 0.0;
  if (algo == CollectiveAlgo::kTree) {
    // Tree cost, with allreduce combining reduce + broadcast.
    cost = (op == CollectiveOp::kAllreduce ? 2.0 : 1.0) * stages *
           (op == CollectiveOp::kBarrier ? platform.latency : msg);
  } else if (algo == CollectiveAlgo::kRing ||
             algo == CollectiveAlgo::kPairwise) {
    cost = (p - 1.0) *
           (op == CollectiveOp::kBarrier ? platform.latency : msg);
  } else {
    switch (op) {
      case CollectiveOp::kBarrier:
        // Dissemination barrier: log2(P) latency-bound stages.
        cost = stages * platform.latency;
        break;
      case CollectiveOp::kBcast:
      case CollectiveOp::kReduce:
      case CollectiveOp::kScatter:
      case CollectiveOp::kGather:
        // Binomial tree.
        cost = stages * msg;
        break;
      case CollectiveOp::kAllreduce:
        // Reduce + broadcast along the same tree.
        cost = 2.0 * stages * msg;
        break;
      case CollectiveOp::kAllgather:
      case CollectiveOp::kReduceScatter:
        // Ring: P-1 steps of the per-rank payload.
        cost = (p - 1.0) * msg;
        break;
      case CollectiveOp::kAlltoall:
        // Pairwise exchange: P-1 rounds.
        cost = (p - 1.0) * msg;
        break;
    }
  }
  return cost * platform.collective_scale;
}

BusAllocator::BusAllocator(std::int32_t buses) : buses_(buses) {
  PALS_CHECK_MSG(buses >= 0, "bus count must be non-negative");
  for (std::int32_t i = 0; i < buses; ++i) free_at_.push(0.0);
}

Seconds BusAllocator::reserve(Seconds earliest, Seconds duration) {
  PALS_CHECK_MSG(duration >= 0.0, "negative transfer duration");
  ++reservations_;
  if (buses_ == 0) return earliest;  // contention-free machine
  const Seconds available = free_at_.top();
  free_at_.pop();
  const Seconds start = std::max(earliest, available);
  contention_delay_ += start - earliest;
  free_at_.push(start + duration);
  return start;
}

}  // namespace pals
