// Platform (machine) model — the Dimemas-style network abstraction.
//
// Point-to-point transfers cost `latency + bytes/bandwidth`; a configurable
// number of shared buses limits concurrent transfers (0 = unlimited).
// Collectives use closed-form cost models parameterized by the same latency
// and bandwidth.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "trace/types.hpp"

namespace pals {

/// Implementation family a collective runs with. kDefault picks the
/// conventional algorithm per op (binomial tree for rooted ops and
/// allreduce, ring for allgather/reduce-scatter, pairwise for alltoall).
enum class CollectiveAlgo {
  kDefault,
  kTree,      ///< ceil(log2 P) stages of (latency + bytes/bw)
  kRing,      ///< P-1 stages of (latency + bytes/bw)
  kPairwise,  ///< P-1 exchanges (identical cost shape to ring)
};

std::string to_string(CollectiveAlgo algo);
CollectiveAlgo parse_collective_algo(const std::string& name);

/// Machine description used by the replay simulator. Defaults approximate
/// the paper's Myrinet cluster (O(10 us) latency, ~250 MB/s links).
struct PlatformModel {
  Seconds latency = 10e-6;          ///< per-message latency (s)
  double bandwidth = 250e6;         ///< link bandwidth (bytes/s)
  Bytes eager_threshold = 32768;    ///< <=: eager protocol; >: rendezvous
  std::int32_t buses = 0;           ///< shared buses; 0 = contention-free
  /// Half-duplex links per node and direction (the Dimemas node model):
  /// a transfer must queue for one output link at the source and one
  /// input link at the destination before taking a bus. 0 = unlimited
  /// (endpoint contention off). Stages are reserved sequentially, a
  /// conservative approximation of Dimemas's joint allocation.
  std::int32_t links_per_node = 0;
  /// Multiplier applied to every collective's closed-form cost; lets
  /// sensitivity studies model faster/slower collective implementations.
  double collective_scale = 1.0;
  /// Per-op algorithm overrides (ops not listed use kDefault).
  std::map<CollectiveOp, CollectiveAlgo> collective_algorithms;

  /// Pure transfer time of a message body (no latency term).
  Seconds transfer_time(Bytes bytes) const;
  /// latency + transfer_time.
  Seconds message_time(Bytes bytes) const;

  /// Throws pals::Error if any parameter is out of range.
  void validate() const;
};

/// Closed-form collective duration once all ranks have entered.
/// `bytes` is the per-rank payload (matching CollectiveEvent::bytes).
Seconds collective_cost(const PlatformModel& platform, CollectiveOp op,
                        Rank n_ranks, Bytes bytes);

/// Tracks occupancy of the platform's shared buses. reserve() finds the
/// earliest start >= `earliest` at which a bus is free for `duration`
/// seconds, books it, and returns the transfer's start time.
///
/// Reservations must be requested in non-decreasing `earliest` order, which
/// the DES guarantees (requests are issued from timestamp-ordered events).
class BusAllocator {
public:
  /// `buses` == 0 means unlimited capacity (every reserve starts at
  /// `earliest`).
  explicit BusAllocator(std::int32_t buses);

  Seconds reserve(Seconds earliest, Seconds duration);

  std::int32_t buses() const { return buses_; }
  /// Total time transfers were delayed waiting for a free bus.
  Seconds contention_delay() const { return contention_delay_; }
  std::size_t reservations() const { return reservations_; }

private:
  std::int32_t buses_;
  // Min-heap of per-bus busy-until times.
  std::priority_queue<Seconds, std::vector<Seconds>, std::greater<>> free_at_;
  Seconds contention_delay_ = 0.0;
  std::size_t reservations_ = 0;
};

}  // namespace pals
