#include "shard/partition.hpp"

#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace pals {
namespace shard {

ShardSpec ShardSpec::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  PALS_CHECK_MSG(slash != std::string::npos && slash > 0 &&
                     slash + 1 < text.size(),
                 "shard spec '" << text << "' is not of the form i/N");
  ShardSpec spec;
  spec.index = static_cast<std::size_t>(parse_int(text.substr(0, slash)));
  spec.count = static_cast<std::size_t>(parse_int(text.substr(slash + 1)));
  PALS_CHECK_MSG(spec.count >= 1,
                 "shard spec '" << text << "': shard count must be >= 1");
  PALS_CHECK_MSG(spec.index < spec.count,
                 "shard spec '" << text << "': index " << spec.index
                                << " out of range (count " << spec.count
                                << ")");
  return spec;
}

std::string ShardSpec::to_string() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

std::size_t shard_of_cell(std::size_t cell_index, std::size_t shard_count) {
  PALS_CHECK_MSG(shard_count >= 1, "shard count must be >= 1");
  if (shard_count == 1) return 0;
  // Domain-tagged so a cell hash can never collide with a group hash of
  // the same spelling.
  const std::string key = "pals-shard-cell|" + std::to_string(cell_index);
  return static_cast<std::size_t>(fnv1a64(key) % shard_count);
}

std::size_t shard_of_group(const std::string& workload_key,
                           std::size_t shard_count) {
  PALS_CHECK_MSG(shard_count >= 1, "shard count must be >= 1");
  if (shard_count == 1) return 0;
  const std::string key = "pals-shard-group|" + workload_key;
  return static_cast<std::size_t>(fnv1a64(key) % shard_count);
}

}  // namespace shard
}  // namespace pals
