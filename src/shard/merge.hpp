// Deterministic fold of shard journals into unsharded artifacts
// (docs/sharding.md).
//
// Every shard of a sweep journals its owned cells with the same
// config_hash and full-grid scenario count as an unsharded run would
// (sharding is execution-only). The merge validates each journal
// against the live sweep, drops every record into its canonical grid
// slot, and re-renders results.csv / errors.csv / pruned.csv from the
// slots — the same path an in-process sweep takes — so the merged
// artifacts are byte-identical to a single-process `--jobs=1` run
// regardless of shard count, crash schedule or retry history.
//
// A cell recorded by two journals with identical content is collapsed;
// conflicting duplicates throw (two shards disagreeing about one cell
// means the partition was violated — refusing beats guessing). Cells no
// journal covers are reported in `missing`; the supervisor quarantines
// them as "shard-lost" when a shard exhausted its restart budget, or
// leaves them pending on a cooperative interrupt.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/sweep.hpp"

namespace pals {
namespace shard {

struct MergeReport {
  /// Successful cells in canonical grid order.
  std::vector<ExperimentRow> rows;
  /// Quarantined cells (journaled errors + extra_errors), canonical order.
  std::vector<ScenarioError> errors;
  /// Pruned cells, canonical order (only under prune_bounds).
  std::vector<PrunedCell> pruned;
  /// Canonical indices no journal (and no extra error) covered.
  std::vector<std::size_t> missing;
  /// Journals folded (absent paths are skipped, not errors: a shard that
  /// died before creating its journal simply contributes nothing).
  std::size_t journals_read = 0;
  /// Liveness heartbeats seen across all journals (ignored by the fold).
  std::size_t heartbeats_seen = 0;
  /// A torn trailing record was dropped in at least one journal.
  bool tail_dropped = false;

  bool complete() const { return missing.empty(); }
};

/// Fold the shard journals at `journal_paths` into canonical-order
/// results for `scenarios` under `options` (used for the config hash and
/// the prune_bounds flag — execution-only knobs are ignored, exactly as
/// sweep_config_hash does). `extra_errors` are supervisor-synthesized
/// quarantines (shard-lost cells) slotted alongside the journaled ones.
/// Throws pals::Error on a journal whose header disagrees with the live
/// sweep, on interior corruption, or on conflicting duplicate cells.
MergeReport merge_shard_journals(const std::vector<Scenario>& scenarios,
                                 const SweepOptions& options,
                                 const std::vector<std::string>& journal_paths,
                                 const std::vector<ScenarioError>&
                                     extra_errors = {});

/// Synthesize the quarantine record for a cell whose owning shard was
/// lost (restart budget exhausted, salvage failed): class "shard-lost",
/// workload display and variant derived exactly as the sweep engine
/// would, so the merged errors.csv stays canonical.
ScenarioError make_shard_lost_error(const std::vector<Scenario>& scenarios,
                                    int iterations, std::size_t index,
                                    const std::string& message,
                                    int attempts);

}  // namespace shard
}  // namespace pals
