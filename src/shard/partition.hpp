// Deterministic shard partitioning for multi-process sweeps
// (docs/sharding.md).
//
// `pals_sweep --shard i/N` must run a *stable* subset of the canonical
// grid: the subset may depend only on the cell's canonical index (or,
// for bound-pruned sweeps, its workload key), never on timing, thread
// count, or which shards happen to be alive — otherwise two shards
// could both run a cell (conflicting journals) or both skip it (holes
// in the merge). The assignment is a pure FNV-1a hash mod N, so:
//
//  * every cell belongs to exactly one shard at a given N;
//  * the assignment is identical in every process that computes it
//    (worker, supervisor, merge) with no coordination;
//  * changing N reshuffles the subsets but the *union* is always the
//    full grid, so merged artifacts are byte-identical across N.
//
// Two granularities:
//
//  * by cell (the default): cells scatter hash-uniformly across shards.
//  * by workload group (`--prune-bounds` sweeps): every cell of one
//    workload lands on the same shard, because a prune decision for
//    cell i consults the completed earlier cells of i's workload —
//    keeping the group shard-local keeps the decision sequence exactly
//    what a single-process run would derive.
#pragma once

#include <cstddef>
#include <string>

namespace pals {
namespace shard {

/// A worker's identity: "this process runs shard `index` of `count`".
/// count == 1 means unsharded (every cell is owned).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  /// Parse "i/N" (e.g. "2/5"); throws pals::Error unless 0 <= i < N.
  static ShardSpec parse(const std::string& text);

  bool active() const { return count > 1; }
  /// "i/N" — the inverse of parse(); also the heartbeat shard label.
  std::string to_string() const;
};

/// Owning shard of canonical grid cell `cell_index` at `shard_count`
/// shards. Pure; shard_count must be >= 1.
std::size_t shard_of_cell(std::size_t cell_index, std::size_t shard_count);

/// Owning shard of a whole workload group, keyed by the workload's
/// canonical cache key (WorkloadRef::key). Pure; shard_count must be
/// >= 1.
std::size_t shard_of_group(const std::string& workload_key,
                           std::size_t shard_count);

}  // namespace shard
}  // namespace pals
