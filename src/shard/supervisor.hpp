// Shard supervisor: launch, watch, restart (docs/sharding.md).
//
// supervise_shards() forks one `pals_sweep --shard i/N` worker per
// shard, each in its own process group and its own run directory under
// the supervisor's parent run dir, and drives them to completion
// through a small per-shard state machine:
//
//   running --crash/hang--> backoff --deadline--> running (--resume)
//   running --exit 0/3----> done
//   backoff budget exhausted --> salvage queue --> lost or salvaged
//
//  * Crash: the worker exits nonzero or dies on a signal. It restarts
//    with `--resume` after a capped exponential host-side backoff, up
//    to max_shard_restarts times.
//  * Hang: with a watchdog armed, a worker whose journal has not grown
//    for watchdog_seconds (heartbeats keep a live worker's journal
//    growing even between slow cells) is SIGKILLed — process group and
//    all — and takes the same restart path.
//  * Exhausted budget: with reassignment on, the dead shard's resume is
//    salvaged once in a surviving slot (the partition is a pure
//    function, so any process can finish any shard's subset); if that
//    also fails the shard is lost and its remaining cells are
//    quarantined as "shard-lost" by the caller.
//  * Cooperative stop: when the cancel flag rises (pals_shepherd's
//    SIGINT/SIGTERM handler), every worker group gets SIGTERM, drains
//    its in-flight cells into its journal and exits `interrupted`; no
//    orphans survive the supervisor (a scope guard SIGKILLs any
//    still-running group on every exit path).
//
// Chaos hooks (tests): the supervisor knows the worker pids, so the
// torture tests inject faults here instead of guessing pids —
// chaos_kill SIGKILLs a shard's group after its journal first grows
// (i.e. mid-run), chaos_stop SIGSTOPs it once so the watchdog must
// notice the stall.
//
// POSIX-only (fork/exec/waitpid); on other platforms supervise_shards
// throws.
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pals {
namespace shard {

/// Test hook: SIGKILL shard `shard`'s process group `kills` times, each
/// time after its journal has grown past the size at (re)launch.
struct ChaosKill {
  std::size_t shard = 0;
  int kills = 1;
};

struct SupervisorOptions {
  /// Path to the pals_sweep binary the workers exec.
  std::string worker_binary;
  /// Arguments every worker shares (grid, config, fault plan, --quiet,
  /// ...). The supervisor appends the per-shard --shard/--run-dir (or
  /// --resume), --jobs and --heartbeat flags itself.
  std::vector<std::string> worker_args;
  /// Parent run directory; shard i journals into shard_run_dir(run_dir, i).
  std::string run_dir;
  std::size_t shards = 2;
  /// Worker threads per shard (pals_sweep --jobs).
  int jobs_per_shard = 1;
  /// Worker heartbeat interval, seconds (0 disables --heartbeat).
  double heartbeat_seconds = 0.0;
  /// Journal-stall watchdog, seconds (0 disables hang detection). Arm
  /// together with heartbeats, else a slow cell looks like a hang.
  double watchdog_seconds = 0.0;
  /// Restarts per shard before its budget is exhausted.
  int max_shard_restarts = 2;
  /// Capped exponential backoff between restarts (host-side sleep).
  double backoff_base_seconds = 0.05;
  double backoff_cap_seconds = 1.0;
  /// Salvage an exhausted shard's resume once in a surviving slot before
  /// declaring it lost.
  bool reassign = true;
  /// Supervisor poll interval, seconds.
  double poll_seconds = 0.02;
  std::vector<ChaosKill> chaos_kill;
  /// Test hook: SIGSTOP these shards once, after first journal growth.
  std::vector<std::size_t> chaos_stop;
  /// Progress/restart log lines ("shepherd: ..."); null disables.
  std::ostream* log = nullptr;
  /// Cooperative stop flag (not owned; may be set from a signal handler).
  const std::atomic<bool>* cancel = nullptr;
};

struct ShardOutcome {
  std::size_t shard = 0;
  std::string run_dir;
  int restarts = 0;
  /// Host backoff scheduled across restarts, seconds.
  double backoff_seconds = 0.0;
  /// Final wait status, exit-code convention (128 + N for signal N).
  int last_status = 0;
  bool completed = false;    ///< terminal success (exit 0 or 3)
  bool interrupted = false;  ///< drained after the cooperative stop
  bool lost = false;         ///< budget exhausted (salvage failed too)
  bool salvaged = false;     ///< finished by a reassigned salvage run
  std::size_t watchdog_kills = 0;
  std::size_t chaos_kills = 0;
};

struct SupervisorResult {
  std::vector<ShardOutcome> shards;
  bool interrupted = false;  ///< the cancel flag stopped the run
  bool degraded = false;     ///< at least one shard was lost
  std::size_t restarts_total = 0;

  bool any_lost() const { return degraded; }
};

/// Shard i's run directory under the supervisor's parent run dir.
std::string shard_run_dir(const std::string& run_dir, std::size_t shard);

/// Launch and supervise the shard workers; returns when every shard is
/// terminal (done, lost, or drained after a cooperative stop). Throws
/// pals::Error on setup failures (unlaunchable worker binary, bad
/// options) — never because a *worker* failed; worker failures are data
/// in the result.
SupervisorResult supervise_shards(const SupervisorOptions& options);

}  // namespace shard
}  // namespace pals
