#include "shard/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <ostream>
#include <thread>

#include "util/backoff.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace pals {
namespace shard {

std::string shard_run_dir(const std::string& run_dir, std::size_t shard) {
  return run_dir + "/shard-" + std::to_string(shard);
}

#ifdef _WIN32

SupervisorResult supervise_shards(const SupervisorOptions&) {
  throw Error("pals_shepherd requires a POSIX host (fork/exec/waitpid)");
}

#else

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

enum class ShardState {
  kBackoff,      // waiting for its (re)launch deadline
  kRunning,
  kSalvageWait,  // budget exhausted; queued for one salvage attempt
  kDone,
  kLost,
  kInterrupted,
};

bool terminal(ShardState state) {
  return state == ShardState::kDone || state == ShardState::kLost ||
         state == ShardState::kInterrupted;
}

struct ShardSlot {
  ShardOutcome outcome;
  ShardState state = ShardState::kBackoff;
  pid_t pid = -1;
  Clock::time_point deadline{};     // kBackoff: relaunch at this instant
  Clock::time_point last_growth{};  // last observed journal growth
  std::uintmax_t size_at_launch = 0;
  std::uintmax_t last_size = 0;
  bool salvaging = false;  // current run is the one salvage attempt
  bool stopped = false;    // SIGSTOPped by chaos; watchdog must notice
  int chaos_kills_left = 0;
  bool chaos_stop_pending = false;
};

std::uintmax_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

/// Collapse a wait(2) status onto the shell convention (128 + signal).
int decode_wait_status(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 128;
}

pid_t launch_worker(const SupervisorOptions& options, std::size_t shard_index,
                    bool resume) {
  const std::string dir = shard_run_dir(options.run_dir, shard_index);
  std::filesystem::create_directories(dir);
  std::vector<std::string> args;
  args.push_back(options.worker_binary);
  args.insert(args.end(), options.worker_args.begin(),
              options.worker_args.end());
  args.push_back("--shard=" + std::to_string(shard_index) + "/" +
                 std::to_string(options.shards));
  args.push_back(resume ? "--resume=" + dir : "--run-dir=" + dir);
  args.push_back("--jobs=" + std::to_string(options.jobs_per_shard));
  if (options.heartbeat_seconds > 0.0)
    args.push_back("--heartbeat=" +
                   format_roundtrip(options.heartbeat_seconds));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  PALS_CHECK_MSG(pid >= 0, "fork failed for shard " << shard_index);
  if (pid == 0) {
    // Own process group: supervisor signals target the whole worker
    // (and anything it spawns) without ever touching its siblings, and
    // a terminal ^C at the shepherd does not reach the workers directly
    // — the shepherd propagates it as a cooperative SIGTERM drain.
    ::setpgid(0, 0);
    const std::string log_path = dir + "/worker.log";
    const int fd =
        ::open(log_path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  // Also from the parent, so the group exists before any signal is sent
  // regardless of who wins the fork/exec race (EACCES after exec is
  // fine: the child already did it).
  ::setpgid(pid, pid);
  return pid;
}

}  // namespace

SupervisorResult supervise_shards(const SupervisorOptions& options) {
  PALS_CHECK_MSG(options.shards >= 1, "need at least one shard");
  PALS_CHECK_MSG(!options.worker_binary.empty(),
                 "worker binary path is empty");
  PALS_CHECK_MSG(std::filesystem::exists(options.worker_binary),
                 "worker binary '" << options.worker_binary
                                   << "' does not exist");
  PALS_CHECK_MSG(!options.run_dir.empty(), "run dir is empty");
  PALS_CHECK_MSG(options.max_shard_restarts >= 0,
                 "max_shard_restarts must be >= 0");
  PALS_CHECK_MSG(options.backoff_base_seconds >= 0.0 &&
                     options.backoff_cap_seconds >= 0.0,
                 "backoff must be >= 0");
  PALS_CHECK_MSG(options.poll_seconds > 0.0, "poll_seconds must be > 0");
  std::filesystem::create_directories(options.run_dir);

  std::vector<ShardSlot> slots(options.shards);
  for (std::size_t i = 0; i < options.shards; ++i) {
    slots[i].outcome.shard = i;
    slots[i].outcome.run_dir = shard_run_dir(options.run_dir, i);
    slots[i].deadline = Clock::now();  // first launch is immediate
  }
  for (const ChaosKill& chaos : options.chaos_kill) {
    PALS_CHECK_MSG(chaos.shard < options.shards,
                   "chaos-kill shard " << chaos.shard << " out of range");
    slots[chaos.shard].chaos_kills_left += chaos.kills;
  }
  for (const std::size_t s : options.chaos_stop) {
    PALS_CHECK_MSG(s < options.shards,
                   "chaos-stop shard " << s << " out of range");
    slots[s].chaos_stop_pending = true;
  }

  // No orphans on any exit path (return or exception): SIGKILL every
  // process group still alive and reap it.
  struct Reaper {
    std::vector<ShardSlot>* slots;
    ~Reaper() {
      for (ShardSlot& slot : *slots) {
        if (slot.pid <= 0) continue;
        ::kill(-slot.pid, SIGKILL);
        int status = 0;
        ::waitpid(slot.pid, &status, 0);
        slot.pid = -1;
      }
    }
  } reaper{&slots};

  const auto log_line = [&](const std::string& text) {
    if (options.log == nullptr) return;
    *options.log << "shepherd: " << text << '\n' << std::flush;
  };
  const auto label = [&](std::size_t i) {
    return std::to_string(i) + "/" + std::to_string(options.shards);
  };
  const auto journal_path = [&](std::size_t i) {
    return shard_run_dir(options.run_dir, i) + "/journal.palsj";
  };
  const auto backoff_delay = [&](int restart) {
    return BackoffPolicy{options.backoff_base_seconds, 2.0,
                         options.backoff_cap_seconds}
        .delay(restart);
  };
  const auto launch = [&](std::size_t i, bool salvage) {
    ShardSlot& slot = slots[i];
    // A worker SIGKILLed before JournalWriter::create committed leaves
    // no journal; relaunching with --resume would then be refused, so
    // fall back to a fresh --run-dir in that case.
    const bool resume = std::filesystem::exists(journal_path(i));
    slot.pid = launch_worker(options, i, resume);
    slot.state = ShardState::kRunning;
    slot.salvaging = salvage;
    slot.stopped = false;
    slot.size_at_launch = file_size_or_zero(journal_path(i));
    slot.last_size = slot.size_at_launch;
    slot.last_growth = Clock::now();
  };

  bool draining = false;
  while (true) {
    // Cooperative stop: propagate SIGTERM to every running group once;
    // pending relaunches and salvage attempts are abandoned. Workers
    // drain in-flight cells into their journals and exit "interrupted".
    if (!draining && options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      draining = true;
      log_line("stop requested; draining shards");
      for (ShardSlot& slot : slots) {
        if (slot.state == ShardState::kRunning && slot.pid > 0) {
          ::kill(-slot.pid, SIGTERM);
          if (slot.stopped) ::kill(-slot.pid, SIGCONT);
        } else if (!terminal(slot.state)) {
          slot.state = ShardState::kInterrupted;
          slot.outcome.interrupted = true;
        }
      }
    }

    bool all_terminal = true;
    for (std::size_t i = 0; i < options.shards; ++i) {
      ShardSlot& slot = slots[i];
      if (slot.state == ShardState::kRunning) {
        int status = 0;
        const pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
        if (reaped == slot.pid) {
          slot.pid = -1;
          const int code = decode_wait_status(status);
          slot.outcome.last_status = code;
          if (code == 0 || code == 3) {
            // 3 = completed with quarantined cells: the worker finished
            // its subset, some cells are journaled as errors. Terminal.
            slot.state = ShardState::kDone;
            slot.outcome.completed = true;
            slot.outcome.salvaged = slot.salvaging;
            log_line("shard " + label(i) + " completed (exit " +
                     std::to_string(code) + ")");
          } else if (code == 4 && draining) {
            slot.state = ShardState::kInterrupted;
            slot.outcome.interrupted = true;
            log_line("shard " + label(i) + " drained");
          } else if (draining) {
            // Crashed during the drain: no restarts once stopping.
            slot.state = ShardState::kInterrupted;
            slot.outcome.interrupted = true;
            log_line("shard " + label(i) + " died during drain (status " +
                     std::to_string(code) + ")");
          } else if (slot.salvaging) {
            slot.state = ShardState::kLost;
            slot.outcome.lost = true;
            log_line("shard " + label(i) + " salvage failed (status " +
                     std::to_string(code) + "); shard lost");
          } else if (slot.outcome.restarts < options.max_shard_restarts) {
            ++slot.outcome.restarts;
            const double delay = backoff_delay(slot.outcome.restarts);
            slot.outcome.backoff_seconds += delay;
            slot.deadline =
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(delay));
            slot.state = ShardState::kBackoff;
            log_line("shard " + label(i) + " died (status " +
                     std::to_string(code) + "); restart " +
                     std::to_string(slot.outcome.restarts) + "/" +
                     std::to_string(options.max_shard_restarts) + " in " +
                     format_fixed(delay, 3) + "s");
          } else if (options.reassign) {
            slot.state = ShardState::kSalvageWait;
            log_line("shard " + label(i) +
                     " exhausted its restart budget (status " +
                     std::to_string(code) +
                     "); reassigning its cells to a surviving slot");
          } else {
            slot.state = ShardState::kLost;
            slot.outcome.lost = true;
            log_line("shard " + label(i) +
                     " exhausted its restart budget (status " +
                     std::to_string(code) + "); shard lost");
          }
        } else {
          // Still running: track journal growth, inject chaos, watchdog.
          const std::uintmax_t size = file_size_or_zero(journal_path(i));
          if (size > slot.last_size) {
            slot.last_size = size;
            slot.last_growth = Clock::now();
          }
          if (!slot.stopped && size > slot.size_at_launch) {
            if (slot.chaos_kills_left > 0) {
              --slot.chaos_kills_left;
              ++slot.outcome.chaos_kills;
              ::kill(-slot.pid, SIGKILL);
              log_line("chaos: SIGKILL shard " + label(i));
            } else if (slot.chaos_stop_pending) {
              slot.chaos_stop_pending = false;
              slot.stopped = true;
              ::kill(-slot.pid, SIGSTOP);
              log_line("chaos: SIGSTOP shard " + label(i));
            }
          }
          if (options.watchdog_seconds > 0.0 &&
              seconds_since(slot.last_growth) > options.watchdog_seconds) {
            // Hung (or chaos-stopped): the journal stopped growing even
            // though heartbeats should keep it moving. SIGKILL works on
            // stopped processes too.
            ++slot.outcome.watchdog_kills;
            slot.stopped = false;
            ::kill(-slot.pid, SIGKILL);
            slot.last_growth = Clock::now();  // rearm for the reap
            log_line("watchdog: shard " + label(i) +
                     " journal stalled; SIGKILL");
          }
        }
      } else if (slot.state == ShardState::kBackoff) {
        if (Clock::now() >= slot.deadline) {
          launch(i, /*salvage=*/false);
          log_line("shard " + label(i) +
                   (slot.outcome.restarts > 0 ? " restarted" : " launched"));
        }
      } else if (slot.state == ShardState::kSalvageWait) {
        // The partition is a pure function of the spec, so any process
        // can finish this shard's subset; run the salvage attempt in a
        // fresh worker occupying the dead shard's slot.
        launch(i, /*salvage=*/true);
        log_line("shard " + label(i) + " salvage attempt started");
      }
      if (!terminal(slot.state)) all_terminal = false;
    }
    if (all_terminal) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.poll_seconds));
  }

  SupervisorResult result;
  result.interrupted = draining;
  for (ShardSlot& slot : slots) {
    result.degraded = result.degraded || slot.outcome.lost;
    result.restarts_total += static_cast<std::size_t>(slot.outcome.restarts);
    result.shards.push_back(std::move(slot.outcome));
  }
  return result;
}

#endif  // _WIN32

}  // namespace shard
}  // namespace pals
