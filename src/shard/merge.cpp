#include "shard/merge.hpp"

#include <filesystem>
#include <optional>
#include <utility>

#include "analysis/journal.hpp"
#include "util/error.hpp"

namespace pals {
namespace shard {

MergeReport merge_shard_journals(const std::vector<Scenario>& scenarios,
                                 const SweepOptions& options,
                                 const std::vector<std::string>& journal_paths,
                                 const std::vector<ScenarioError>&
                                     extra_errors) {
  PALS_CHECK_MSG(!scenarios.empty(), "shard merge has no scenarios");
  const std::string config_hash = sweep_config_hash(scenarios, options);

  MergeReport report;
  std::vector<std::optional<JournalRecord>> slots(scenarios.size());
  std::vector<std::string> slot_lines(scenarios.size());
  std::vector<std::string> slot_source(scenarios.size());
  for (const std::string& path : journal_paths) {
    if (!std::filesystem::exists(path)) continue;
    JournalReadReport journal = read_journal(path);
    PALS_CHECK_MSG(journal.header.scenarios == scenarios.size(),
                   "shard journal '" << path << "' describes "
                       << journal.header.scenarios
                       << " scenarios but this sweep has "
                       << scenarios.size());
    PALS_CHECK_MSG(journal.header.config_hash == config_hash,
                   "shard journal '" << path << "' config hash "
                       << journal.header.config_hash
                       << " does not match this sweep's " << config_hash
                       << " (the journal belongs to a different sweep "
                          "configuration)");
    report.tail_dropped = report.tail_dropped || journal.tail_dropped;
    report.heartbeats_seen += journal.heartbeats.size();
    ++report.journals_read;
    for (JournalRecord& record : journal.records) {
      const std::size_t i = record.index;
      const std::string line = record.to_line();
      if (slots[i].has_value()) {
        // Deterministic partitioning makes one shard own each cell, so a
        // cross-journal duplicate is only legal when it is bit-identical
        // (e.g. the same run dir listed twice).
        PALS_CHECK_MSG(slot_lines[i] == line,
                       "shard journals conflict on cell "
                           << i << ": '" << slot_source[i] << "' and '"
                           << path << "' disagree (partition violated)");
        continue;
      }
      slot_lines[i] = line;
      slot_source[i] = path;
      slots[i] = std::move(record);
    }
  }

  std::vector<std::optional<ScenarioError>> extra_slots(scenarios.size());
  for (const ScenarioError& e : extra_errors) {
    PALS_CHECK_MSG(e.index < scenarios.size(),
                   "extra error index " << e.index << " out of range ("
                                        << scenarios.size() << " scenarios)");
    PALS_CHECK_MSG(!slots[e.index].has_value(),
                   "extra error for cell " << e.index << " but journal '"
                       << slot_source[e.index] << "' already covers it");
    PALS_CHECK_MSG(!extra_slots[e.index].has_value(),
                   "duplicate extra error for cell " << e.index);
    extra_slots[e.index] = e;
  }

  // The canonical-order fold — the same slot walk an in-process sweep
  // performs, so the rendered CSVs are byte-identical to its output.
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (slots[i].has_value()) {
      JournalRecord& record = *slots[i];
      if (record.kind == JournalRecord::Kind::kRow) {
        report.rows.push_back(std::move(record.row));
      } else if (record.kind == JournalRecord::Kind::kPruned) {
        PALS_CHECK_MSG(options.prune_bounds,
                       "shard journal records pruned cell "
                           << i
                           << " but this sweep does not set prune_bounds");
        report.pruned.push_back(PrunedCell{i,
                                           record.workload,
                                           record.variant,
                                           record.lb_normalized_time,
                                           record.lb_normalized_energy,
                                           record.dominated_by,
                                           scenarios[record.dominated_by]
                                               .variant_label()});
      } else {
        report.errors.push_back(ScenarioError{
            i,
            record.workload,
            record.variant,
            fault::error_class_from_string(record.error_class),
            record.attempts,
            record.retries,
            record.backoff_seconds,
            record.message});
      }
    } else if (extra_slots[i].has_value()) {
      report.errors.push_back(std::move(*extra_slots[i]));
    } else {
      report.missing.push_back(i);
    }
  }
  return report;
}

ScenarioError make_shard_lost_error(const std::vector<Scenario>& scenarios,
                                    int iterations, std::size_t index,
                                    const std::string& message,
                                    int attempts) {
  PALS_CHECK_MSG(index < scenarios.size(),
                 "shard-lost index " << index << " out of range ("
                                     << scenarios.size() << " scenarios)");
  const Scenario& s = scenarios[index];
  ScenarioError error;
  error.index = index;
  error.workload = resolve_workload(s.workload, iterations).display;
  error.variant = s.variant_label();
  error.error_class = fault::ErrorClass::kShardLost;
  error.attempts = attempts;
  error.retries = attempts > 0 ? attempts - 1 : 0;
  error.backoff_seconds = 0.0;
  error.message = message;
  return error;
}

}  // namespace shard
}  // namespace pals
