#include "fault/campaign.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace pals {
namespace fault {

void CampaignOptions::validate() const {
  PALS_CHECK_MSG(ranks > 0, "campaign ranks must be > 0");
  PALS_CHECK_MSG(count > 0, "campaign count must be > 0");
  PALS_CHECK_MSG(horizon >= 0.0, "campaign horizon must be >= 0");
  PALS_CHECK_MSG(max_factor >= 1.0, "campaign max_factor must be >= 1");
  PALS_CHECK_MSG(max_jitter > 0.0, "campaign max_jitter must be > 0");
  PALS_CHECK_MSG(!kinds.empty(), "campaign needs at least one fault kind");
}

FaultPlan generate_campaign(const CampaignOptions& options) {
  options.validate();
  if (options.scenarios == 0) {
    bool any_simulated = false;
    for (const FaultKind kind : options.kinds)
      if (kind != FaultKind::kScenarioFlaky &&
          kind != FaultKind::kScenarioCrash)
        any_simulated = true;
    PALS_CHECK_MSG(any_simulated,
                   "campaign with scenarios=0 needs at least one simulated "
                   "fault kind");
  }
  Rng rng(options.seed);
  FaultPlan plan;
  plan.seed = options.seed;
  plan.specs.reserve(static_cast<std::size_t>(options.count));
  while (plan.specs.size() < static_cast<std::size_t>(options.count)) {
    const FaultKind kind = options.kinds[static_cast<std::size_t>(
        rng.uniform_int(0, options.kinds.size() - 1))];
    FaultSpec spec;
    spec.kind = kind;
    switch (kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kNodeSlowdown:
        spec.rank = static_cast<Rank>(
            rng.uniform_int(0, static_cast<std::uint64_t>(options.ranks) - 1));
        spec.start = rng.uniform(0.0, options.horizon);
        spec.factor = rng.uniform(1.0, options.max_factor);
        break;
      case FaultKind::kGearStuck:
        spec.rank = static_cast<Rank>(
            rng.uniform_int(0, static_cast<std::uint64_t>(options.ranks) - 1));
        spec.gear = rng.uniform() < 0.5 ? StuckGear::kMin : StuckGear::kMax;
        break;
      case FaultKind::kMsgDelayJitter:
        // One in four jitter faults hits every sender, the rest one rank.
        spec.rank = rng.uniform() < 0.25
                        ? -1
                        : static_cast<Rank>(rng.uniform_int(
                              0, static_cast<std::uint64_t>(options.ranks) - 1));
        spec.max_jitter = rng.uniform(options.max_jitter * 0.1,
                                      options.max_jitter);
        break;
      case FaultKind::kScenarioFlaky:
      case FaultKind::kScenarioCrash:
        if (options.scenarios == 0) continue;  // redraw a simulated kind
        spec.index = static_cast<std::int64_t>(
            rng.uniform_int(0, options.scenarios - 1));
        if (kind == FaultKind::kScenarioFlaky)
          spec.failures = static_cast<int>(rng.uniform_int(1, 3));
        break;
    }
    plan.specs.push_back(spec);
  }
  plan.validate();
  return plan;
}

}  // namespace fault
}  // namespace pals
