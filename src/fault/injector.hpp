// Fault injector — the runtime face of a FaultPlan.
//
// An Injector compiles a plan into a pure perturbation oracle the replay
// simulator and power pipeline query while executing:
//
//   compute_factor(rank, t)        multiplier for a burst starting at t
//   transfer_factor(src, dst, t)   multiplier for a transfer entering at t
//   latency_jitter(rank, index)    extra latency of rank's index-th message
//   stuck_gear(rank)               DVFS pin for the rank, if any
//
// plus the host-side queries the sweep engine uses to inject scenario
// failures (scenario_transient_failures / scenario_crashed).
//
// Every answer is a pure function of (plan, seed, rank, index) — the
// injector holds no mutable state, so concurrent scenarios sharing one
// instance stay deterministic and results are byte-identical across
// --jobs counts. Counting of applied perturbations happens in the replay
// engine (per run, merged into obs counters), not here.
#pragma once

#include <cstdint>
#include <optional>

#include "fault/fault_plan.hpp"

namespace pals {
namespace fault {

class Injector {
 public:
  explicit Injector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Any simulated-machine perturbation at all? (Replay skips the fault
  /// path entirely when false.)
  bool perturbs_replay() const { return plan_.perturbs_simulation(); }
  bool has_stuck_gears() const { return has_stuck_gears_; }

  /// Duration multiplier (>= 1) for a compute burst of `rank` beginning
  /// at simulated time `start`.
  double compute_factor(Rank rank, Seconds start) const;

  /// Transfer-time multiplier (>= 1) for a message src -> dst entering
  /// the network at simulated time `start`. link_degrade specs match when
  /// either endpoint is the degraded rank.
  double transfer_factor(Rank src, Rank dst, Seconds start) const;

  /// Extra latency (seconds, >= 0) for the `message_index`-th message
  /// posted by `rank` — a pure hash of (seed, rank, message_index), so
  /// replays are reproducible event by event.
  Seconds latency_jitter(Rank rank, std::uint64_t message_index) const;

  /// DVFS pin for `rank` under a gear_stuck fault; nullopt when free.
  /// With several matching specs the last one in the plan wins.
  std::optional<StuckGear> stuck_gear(Rank rank) const;

  /// Host-side: number of leading attempts of sweep cell `index` that
  /// must fail transiently (0 = healthy).
  int scenario_transient_failures(std::size_t index) const;
  /// Host-side: cell `index` fails permanently.
  bool scenario_crashed(std::size_t index) const;

 private:
  /// Seeded membership test for rate-based scenario_* specs: a pure hash
  /// of (seed, spec ordinal, index) against `rate`.
  bool rate_selects(const FaultSpec& spec, std::size_t ordinal,
                    std::size_t index) const;

  FaultPlan plan_;
  bool has_stuck_gears_ = false;
};

}  // namespace fault
}  // namespace pals
