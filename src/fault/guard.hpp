// Host-side resilience primitives: structured error classification and
// guarded execution with deterministic retry/backoff.
//
// run_guarded() converts exceptions thrown by a work item into a
// GuardOutcome instead of unwinding the caller, retrying transient
// classes with capped exponential backoff. The backoff is accounted in
// *simulated* seconds (no wall-clock sleeping), so a retried sweep is
// exactly as deterministic as an unretried one: attempt counts and
// accrued backoff depend only on the failure sequence, never on host
// timing.
#pragma once

#include <functional>
#include <string>

#include "trace/types.hpp"
#include "util/error.hpp"

namespace pals {
namespace fault {

/// Why a guarded work item failed. Only kTransient is retried.
enum class ErrorClass {
  kTransient,  ///< injected/transient fault — retry may succeed
  kPermanent,  ///< logic error or invalid input — retrying is pointless
  kTimeout,    ///< simulated event-limit exceeded (runaway simulation)
  kDeadlock,   ///< replay deadlock (blocked dependency cycle)
  kLint,       ///< static trace verification failed
  kResource,   ///< allocation failure
  kShardLost,  ///< shard worker exhausted its restart budget; the cell was
               ///< quarantined by the supervisor (docs/sharding.md)
};

std::string to_string(ErrorClass error_class);

/// Inverse of to_string (the run journal stores classes by name); throws
/// pals::Error on unknown names.
ErrorClass error_class_from_string(const std::string& name);

/// Error subclass marking failures that are expected to clear on retry.
/// Fault injection throws these for scenario_flaky cells.
class TransientError : public Error {
 public:
  using Error::Error;
};

/// Map an in-flight exception onto the taxonomy: TransientError ->
/// kTransient, bad_alloc -> kResource, messages naming a lint report,
/// a deadlock or the simulated event limit -> kLint/kDeadlock/kTimeout,
/// everything else -> kPermanent.
ErrorClass classify(const std::exception& error);

struct RetryPolicy {
  /// Retries after the first attempt (attempts = max_retries + 1).
  int max_retries = 2;
  /// First backoff delay, simulated seconds.
  Seconds backoff_base = 0.5;
  /// Per-retry multiplier.
  double backoff_multiplier = 2.0;
  /// Cap on any single delay.
  Seconds backoff_cap = 8.0;

  /// Delay before retry number `retry` (1-based): capped
  /// base * multiplier^(retry-1). Pure, hence deterministic.
  Seconds backoff_delay(int retry) const;
};

/// What happened to one guarded work item.
struct GuardOutcome {
  bool ok = false;
  int attempts = 1;               ///< total attempts made (>= 1)
  int retries = 0;                ///< attempts - 1
  ErrorClass error_class = ErrorClass::kPermanent;  ///< valid when !ok
  std::string message;            ///< final error text, valid when !ok
  Seconds backoff_seconds = 0.0;  ///< simulated backoff accrued

  std::string describe() const;
};

/// Run `body(attempt)` (attempt starts at 1), retrying transient failures
/// up to policy.max_retries times. Non-transient failures and exhausted
/// retries return a failed outcome carrying the classification; nothing
/// escapes except exceptions thrown by the outcome bookkeeping itself.
GuardOutcome run_guarded(const RetryPolicy& policy,
                         const std::function<void(int attempt)>& body);

}  // namespace fault
}  // namespace pals
