#include "fault/injector.hpp"

namespace pals {
namespace fault {
namespace {

/// SplitMix64 finalizer — the avalanche stage used to turn structured
/// (seed, rank, index) tuples into uniform bits.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from 64 hash bits.
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool matches_rank(const FaultSpec& spec, Rank rank) {
  return spec.rank < 0 || spec.rank == rank;
}

}  // namespace

Injector::Injector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
  for (const FaultSpec& s : plan_.specs)
    if (s.kind == FaultKind::kGearStuck) has_stuck_gears_ = true;
}

double Injector::compute_factor(Rank rank, Seconds start) const {
  double factor = 1.0;
  for (const FaultSpec& s : plan_.specs)
    if (s.kind == FaultKind::kNodeSlowdown && matches_rank(s, rank) &&
        start >= s.start)
      factor *= s.factor;
  return factor;
}

double Injector::transfer_factor(Rank src, Rank dst, Seconds start) const {
  double factor = 1.0;
  for (const FaultSpec& s : plan_.specs)
    if (s.kind == FaultKind::kLinkDegrade &&
        (matches_rank(s, src) || matches_rank(s, dst)) && start >= s.start)
      factor *= s.factor;
  return factor;
}

Seconds Injector::latency_jitter(Rank rank, std::uint64_t message_index) const {
  Seconds jitter = 0.0;
  std::uint64_t ordinal = 0;
  for (const FaultSpec& s : plan_.specs) {
    ++ordinal;
    if (s.kind != FaultKind::kMsgDelayJitter || !matches_rank(s, rank))
      continue;
    const std::uint64_t h =
        mix(plan_.seed ^ mix(static_cast<std::uint64_t>(rank)) ^
            mix(message_index) ^ mix(ordinal));
    jitter += unit(h) * s.max_jitter;
  }
  return jitter;
}

std::optional<StuckGear> Injector::stuck_gear(Rank rank) const {
  std::optional<StuckGear> stuck;
  for (const FaultSpec& s : plan_.specs)
    if (s.kind == FaultKind::kGearStuck && matches_rank(s, rank))
      stuck = s.gear;
  return stuck;
}

bool Injector::rate_selects(const FaultSpec& spec, std::size_t ordinal,
                            std::size_t index) const {
  const std::uint64_t h = mix(plan_.seed ^ mix(ordinal) ^
                              mix(static_cast<std::uint64_t>(index) + 1));
  return unit(h) < spec.rate;
}

int Injector::scenario_transient_failures(std::size_t index) const {
  int failures = 0;
  std::size_t ordinal = 0;
  for (const FaultSpec& s : plan_.specs) {
    ++ordinal;
    if (s.kind != FaultKind::kScenarioFlaky) continue;
    if (s.index >= 0
            ? s.index == static_cast<std::int64_t>(index)
            : rate_selects(s, ordinal, index))
      failures += s.failures;
  }
  return failures;
}

bool Injector::scenario_crashed(std::size_t index) const {
  std::size_t ordinal = 0;
  for (const FaultSpec& s : plan_.specs) {
    ++ordinal;
    if (s.kind != FaultKind::kScenarioCrash) continue;
    if (s.index >= 0
            ? s.index == static_cast<std::int64_t>(index)
            : rate_selects(s, ordinal, index))
      return true;
  }
  return false;
}

}  // namespace fault
}  // namespace pals
