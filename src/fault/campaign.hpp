// Seeded fault-campaign generation (pals_faultgen).
//
// A campaign is a randomized-but-reproducible FaultPlan: the same
// (seed, options) always generate the same plan, so large stress sweeps
// ("run the suite under 100 random fault plans") can be regenerated from
// a single integer. Values are drawn with the repo's portable Rng, never
// <random> distributions, so plans are bit-identical across platforms.
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"

namespace pals {
namespace fault {

struct CampaignOptions {
  std::uint64_t seed = 1;
  /// Rank space faults are drawn from (rank in [0, ranks)).
  Rank ranks = 32;
  /// Number of fault specs to generate.
  int count = 4;
  /// Fault start times are drawn uniformly from [0, horizon) seconds.
  Seconds horizon = 2.0;
  /// Degradation factors are drawn uniformly from [1, max_factor].
  double max_factor = 8.0;
  /// Upper bound for msg_delay_jitter magnitudes (seconds).
  Seconds max_jitter = 1e-4;
  /// Kinds to draw from (uniformly). Host-side scenario faults are only
  /// generated when a positive scenario count is given.
  std::vector<FaultKind> kinds = {
      FaultKind::kLinkDegrade, FaultKind::kNodeSlowdown,
      FaultKind::kGearStuck, FaultKind::kMsgDelayJitter};
  /// When > 0, scenario_flaky/scenario_crash specs may target cells in
  /// [0, scenarios); when 0 those kinds are skipped even if listed.
  std::size_t scenarios = 0;

  void validate() const;
};

/// Generate a deterministic plan; plan.seed is set to options.seed so the
/// jitter/rate hashes downstream inherit the campaign seed.
FaultPlan generate_campaign(const CampaignOptions& options);

}  // namespace fault
}  // namespace pals
