#include "fault/fault_plan.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pals {
namespace fault {
namespace {

struct KeyValue {
  std::string key;
  std::string value;
};

std::vector<KeyValue> parse_args(const std::string& entry,
                                 const std::string& args) {
  std::vector<KeyValue> out;
  for (const std::string& field : split(args, ',')) {
    const std::string_view kv = trim(field);
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    PALS_CHECK_MSG(eq != std::string_view::npos && eq > 0,
                   "fault spec '" << entry << "': expected key=value, got '"
                                  << kv << "'");
    out.push_back(KeyValue{std::string(trim(kv.substr(0, eq))),
                           std::string(trim(kv.substr(eq + 1)))});
  }
  PALS_CHECK_MSG(!out.empty(), "fault spec '" << entry << "' has no arguments");
  return out;
}

/// Duration with an optional unit suffix: "0.5", "0.5s" or "250ms".
double parse_seconds_value(const std::string& value) {
  std::string number = value;
  double scale = 1.0;
  if (number.size() > 2 && number.ends_with("ms")) {
    scale = 1e-3;
    number.resize(number.size() - 2);
  } else if (number.size() > 1 && number.back() == 's') {
    number.pop_back();
  }
  return parse_double(number) * scale;
}

/// Multiplier with an optional "x" suffix: "4" or "4x".
double parse_factor_value(const std::string& value) {
  std::string number = value;
  if (number.size() > 1 && number.back() == 'x') number.pop_back();
  return parse_double(number);
}

Rank parse_rank(const std::string& entry, const std::string& value) {
  if (value == "all") return -1;
  const long long r = parse_int(value);
  PALS_CHECK_MSG(r >= 0, "fault spec '" << entry << "': rank must be >= 0 or 'all'");
  return static_cast<Rank>(r);
}

FaultKind kind_by_name(const std::string& entry, const std::string& name) {
  if (name == "link_degrade") return FaultKind::kLinkDegrade;
  if (name == "node_slowdown") return FaultKind::kNodeSlowdown;
  if (name == "gear_stuck") return FaultKind::kGearStuck;
  if (name == "msg_delay_jitter") return FaultKind::kMsgDelayJitter;
  if (name == "scenario_flaky") return FaultKind::kScenarioFlaky;
  if (name == "scenario_crash") return FaultKind::kScenarioCrash;
  throw Error("fault spec '" + entry + "': unknown kind '" + name +
              "' (try link_degrade, node_slowdown, gear_stuck, "
              "msg_delay_jitter, scenario_flaky, scenario_crash)");
}

FaultSpec parse_spec(const std::string& entry) {
  const std::size_t colon = entry.find(':');
  PALS_CHECK_MSG(colon != std::string::npos && colon > 0,
                 "fault spec '" << entry << "': expected kind:key=value,...");
  FaultSpec spec;
  spec.kind = kind_by_name(entry, std::string(trim(entry.substr(0, colon))));

  for (const KeyValue& kv : parse_args(entry, entry.substr(colon + 1))) {
    const auto reject = [&] {
      throw Error("fault spec '" + entry + "': key '" + kv.key +
                  "' is not valid for " + to_string(spec.kind));
    };
    if (kv.key == "rank") {
      if (spec.kind == FaultKind::kScenarioFlaky ||
          spec.kind == FaultKind::kScenarioCrash)
        reject();
      spec.rank = parse_rank(entry, kv.value);
    } else if (kv.key == "t") {
      if (spec.kind != FaultKind::kLinkDegrade &&
          spec.kind != FaultKind::kNodeSlowdown)
        reject();
      spec.start = parse_seconds_value(kv.value);
    } else if (kv.key == "factor") {
      if (spec.kind != FaultKind::kLinkDegrade &&
          spec.kind != FaultKind::kNodeSlowdown)
        reject();
      spec.factor = parse_factor_value(kv.value);
    } else if (kv.key == "gear") {
      if (spec.kind != FaultKind::kGearStuck) reject();
      if (kv.value == "min")
        spec.gear = StuckGear::kMin;
      else if (kv.value == "max")
        spec.gear = StuckGear::kMax;
      else
        throw Error("fault spec '" + entry + "': gear must be min or max, got '" +
                    kv.value + "'");
    } else if (kv.key == "max") {
      if (spec.kind != FaultKind::kMsgDelayJitter) reject();
      spec.max_jitter = parse_seconds_value(kv.value);
    } else if (kv.key == "index") {
      if (spec.kind != FaultKind::kScenarioFlaky &&
          spec.kind != FaultKind::kScenarioCrash)
        reject();
      spec.index = parse_int(kv.value);
      PALS_CHECK_MSG(spec.index >= 0,
                     "fault spec '" << entry << "': index must be >= 0");
    } else if (kv.key == "rate") {
      if (spec.kind != FaultKind::kScenarioFlaky &&
          spec.kind != FaultKind::kScenarioCrash)
        reject();
      spec.rate = parse_double(kv.value);
    } else if (kv.key == "failures") {
      if (spec.kind != FaultKind::kScenarioFlaky) reject();
      spec.failures = static_cast<int>(parse_int(kv.value));
    } else {
      reject();
    }
  }
  return spec;
}

void validate_spec(const FaultSpec& spec) {
  const std::string what = spec.describe();
  switch (spec.kind) {
    case FaultKind::kLinkDegrade:
    case FaultKind::kNodeSlowdown:
      PALS_CHECK_MSG(spec.factor >= 1.0,
                     "fault '" << what << "': factor must be >= 1");
      PALS_CHECK_MSG(spec.start >= 0.0,
                     "fault '" << what << "': t must be >= 0");
      break;
    case FaultKind::kGearStuck:
      PALS_CHECK_MSG(spec.rank >= 0,
                     "fault '" << what << "': gear_stuck needs rank=<r>");
      break;
    case FaultKind::kMsgDelayJitter:
      PALS_CHECK_MSG(spec.max_jitter > 0.0,
                     "fault '" << what << "': max must be > 0");
      break;
    case FaultKind::kScenarioFlaky:
      PALS_CHECK_MSG(spec.failures > 0,
                     "fault '" << what << "': failures must be > 0");
      [[fallthrough]];
    case FaultKind::kScenarioCrash:
      PALS_CHECK_MSG(spec.index >= 0 || spec.rate > 0.0,
                     "fault '" << what
                               << "': needs index=<k> or rate=<fraction>");
      PALS_CHECK_MSG(spec.rate >= 0.0 && spec.rate <= 1.0,
                     "fault '" << what << "': rate must be in [0, 1]");
      break;
  }
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kNodeSlowdown: return "node_slowdown";
    case FaultKind::kGearStuck: return "gear_stuck";
    case FaultKind::kMsgDelayJitter: return "msg_delay_jitter";
    case FaultKind::kScenarioFlaky: return "scenario_flaky";
    case FaultKind::kScenarioCrash: return "scenario_crash";
  }
  return "unknown";
}

std::string to_string(StuckGear gear) {
  return gear == StuckGear::kMin ? "min" : "max";
}

std::string FaultSpec::describe() const {
  std::string out = to_string(kind) + ":";
  const auto rank_field = [this] {
    return "rank=" + (rank < 0 ? std::string("all") : std::to_string(rank));
  };
  switch (kind) {
    case FaultKind::kLinkDegrade:
    case FaultKind::kNodeSlowdown:
      out += rank_field() + ",t=" + format_fixed(start, 6) +
             ",factor=" + format_fixed(factor, 6);
      break;
    case FaultKind::kGearStuck:
      out += rank_field() + ",gear=" + to_string(gear);
      break;
    case FaultKind::kMsgDelayJitter:
      out += rank_field() + ",max=" + format_fixed(max_jitter, 9);
      break;
    case FaultKind::kScenarioFlaky:
      out += (index >= 0 ? "index=" + std::to_string(index)
                         : "rate=" + format_fixed(rate, 6)) +
             ",failures=" + std::to_string(failures);
      break;
    case FaultKind::kScenarioCrash:
      out += index >= 0 ? "index=" + std::to_string(index)
                        : "rate=" + format_fixed(rate, 6);
      break;
  }
  return out;
}

bool FaultPlan::perturbs_simulation() const {
  for (const FaultSpec& s : specs)
    if (s.kind != FaultKind::kScenarioFlaky &&
        s.kind != FaultKind::kScenarioCrash)
      return true;
  return false;
}

bool FaultPlan::perturbs_scenarios() const {
  for (const FaultSpec& s : specs)
    if (s.kind == FaultKind::kScenarioFlaky ||
        s.kind == FaultKind::kScenarioCrash)
      return true;
  return false;
}

std::string FaultPlan::describe() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const FaultSpec& s : specs) out += "; " + s.describe();
  return out;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::string normalized = text;
  for (char& c : normalized)
    if (c == '\n' || c == '\r') c = ';';
  for (const std::string& raw : split(normalized, ';')) {
    std::string_view entry = trim(raw);
    const std::size_t hash = entry.find('#');
    if (hash != std::string_view::npos) entry = trim(entry.substr(0, hash));
    if (entry.empty()) continue;
    if (starts_with(entry, "seed=")) {
      const long long seed = parse_int(entry.substr(5));
      PALS_CHECK_MSG(seed >= 0, "fault plan seed must be >= 0, got " << seed);
      plan.seed = static_cast<std::uint64_t>(seed);
      continue;
    }
    plan.specs.push_back(parse_spec(std::string(entry)));
  }
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::from_file(const std::string& path) {
  std::ifstream in(path);
  PALS_CHECK_MSG(in.good(), "cannot open fault plan '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

FaultPlan FaultPlan::from_file_or_inline(const std::string& source) {
  if (std::ifstream probe(source); probe.good()) return from_file(source);
  return parse(source);
}

void FaultPlan::validate() const {
  for (const FaultSpec& s : specs) validate_spec(s);
}

}  // namespace fault
}  // namespace pals
