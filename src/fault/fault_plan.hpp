// Fault-injection plans (pals::fault) — the declarative face of the
// fault subsystem.
//
// A FaultPlan is a seedable list of fault specifications parsed from a
// small config grammar. Entries are separated by ';' or newlines; '#'
// starts a comment. Each entry is either the plan-wide seed
//
//   seed=42
//
// or a fault spec `kind:key=value,key=value,...`:
//
//   link_degrade:rank=3,t=0.5,factor=4      # rank 3's links 4x slower from t=0.5s
//   node_slowdown:rank=1,t=0.0,factor=2     # rank 1 computes 2x slower
//   gear_stuck:rank=7,gear=min              # DVFS pinned at the set's lowest gear
//   msg_delay_jitter:rank=all,max=1e-4      # seeded latency jitter, all senders
//   scenario_flaky:index=2,failures=1       # sweep cell 2 fails once, then works
//   scenario_flaky:rate=0.25,failures=2     # seeded 25 % of cells fail twice
//   scenario_crash:index=5                  # sweep cell 5 fails permanently
//
// The first four kinds perturb the simulated machine (replay/pipeline);
// the scenario_* kinds are host-side faults that exercise the sweep
// engine's retry/quarantine machinery. Everything downstream of a plan is
// a pure function of (seed, rank, event/scenario index), so injected runs
// stay byte-identical across --jobs counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/types.hpp"

namespace pals {
namespace fault {

enum class FaultKind {
  kLinkDegrade,     ///< multiply transfer times touching a rank's links
  kNodeSlowdown,    ///< multiply a rank's compute-burst durations
  kGearStuck,       ///< pin a rank's DVFS gear at the set's min/max
  kMsgDelayJitter,  ///< seeded extra latency per posted message
  kScenarioFlaky,   ///< host-side: sweep cell fails transiently N times
  kScenarioCrash,   ///< host-side: sweep cell fails permanently
};

std::string to_string(FaultKind kind);

/// Which end of the gear set a gear_stuck fault pins a rank to.
enum class StuckGear { kMin, kMax };

std::string to_string(StuckGear gear);

/// One parsed fault. Fields not used by `kind` keep their defaults.
struct FaultSpec {
  FaultKind kind = FaultKind::kLinkDegrade;
  /// Affected rank; -1 means every rank ("rank=all").
  Rank rank = -1;
  /// Simulated time the fault becomes active ("t="); perturbations apply
  /// to bursts/transfers *starting* at or after this instant.
  Seconds start = 0.0;
  /// Multiplier for link_degrade / node_slowdown (>= 1: degradation).
  double factor = 1.0;
  /// Pinned end of the gear set for gear_stuck.
  StuckGear gear = StuckGear::kMin;
  /// Upper bound of the uniform latency jitter ("max=", seconds).
  Seconds max_jitter = 0.0;
  /// Canonical sweep-grid index for scenario_* faults ("index=");
  /// -1 selects cells by seeded `rate` instead.
  std::int64_t index = -1;
  /// Fraction of cells hit by a rate-based scenario_* fault ("rate=").
  double rate = 0.0;
  /// Transient failure count for scenario_flaky ("failures=").
  int failures = 1;

  /// Canonical spec text; parse(describe()) round-trips.
  std::string describe() const;

  bool operator==(const FaultSpec&) const = default;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }
  /// Any spec that perturbs the simulated machine (non-scenario kinds)?
  bool perturbs_simulation() const;
  /// Any host-side scenario_* spec?
  bool perturbs_scenarios() const;

  /// "seed=42; link_degrade:rank=3,..." — parseable by parse().
  std::string describe() const;

  /// Parse a plan from text (entries split on ';' and newlines). Throws
  /// pals::Error naming the offending entry on any grammar violation.
  static FaultPlan parse(const std::string& text);
  static FaultPlan from_file(const std::string& path);
  /// from_file when `source` names a readable file, else parse(source).
  static FaultPlan from_file_or_inline(const std::string& source);

  /// Throws pals::Error on out-of-range fields (factor < 1, rate outside
  /// [0,1], negative start, ...).
  void validate() const;

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace fault
}  // namespace pals
