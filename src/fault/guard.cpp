#include "fault/guard.hpp"

#include <algorithm>
#include <new>
#include <string_view>

#include "util/backoff.hpp"

namespace pals {
namespace fault {

std::string to_string(ErrorClass error_class) {
  switch (error_class) {
    case ErrorClass::kTransient: return "transient";
    case ErrorClass::kPermanent: return "permanent";
    case ErrorClass::kTimeout: return "timeout";
    case ErrorClass::kDeadlock: return "deadlock";
    case ErrorClass::kLint: return "lint";
    case ErrorClass::kResource: return "resource";
    case ErrorClass::kShardLost: return "shard-lost";
  }
  return "unknown";
}

ErrorClass classify(const std::exception& error) {
  if (dynamic_cast<const TransientError*>(&error) != nullptr)
    return ErrorClass::kTransient;
  if (dynamic_cast<const std::bad_alloc*>(&error) != nullptr)
    return ErrorClass::kResource;
  const std::string_view what = error.what();
  // Lint first: a lint report may itself *describe* a deadlock.
  if (what.find("trace lint failed") != std::string_view::npos)
    return ErrorClass::kLint;
  if (what.find("deadlock") != std::string_view::npos)
    return ErrorClass::kDeadlock;
  if (what.find("event limit") != std::string_view::npos)
    return ErrorClass::kTimeout;
  if (what.find("wall-clock watchdog") != std::string_view::npos)
    return ErrorClass::kTimeout;
  return ErrorClass::kPermanent;
}

ErrorClass error_class_from_string(const std::string& name) {
  if (name == "transient") return ErrorClass::kTransient;
  if (name == "permanent") return ErrorClass::kPermanent;
  if (name == "timeout") return ErrorClass::kTimeout;
  if (name == "deadlock") return ErrorClass::kDeadlock;
  if (name == "lint") return ErrorClass::kLint;
  if (name == "resource") return ErrorClass::kResource;
  if (name == "shard-lost") return ErrorClass::kShardLost;
  throw Error("unknown error class '" + name + "'");
}

Seconds RetryPolicy::backoff_delay(int retry) const {
  return BackoffPolicy{backoff_base, backoff_multiplier, backoff_cap}
      .delay(retry);
}

std::string GuardOutcome::describe() const {
  if (ok) {
    std::string out = "ok";
    if (retries > 0)
      out += " after " + std::to_string(retries) +
             (retries == 1 ? " retry" : " retries");
    return out;
  }
  return to_string(error_class) + " after " + std::to_string(attempts) +
         (attempts == 1 ? " attempt: " : " attempts: ") + message;
}

GuardOutcome run_guarded(const RetryPolicy& policy,
                         const std::function<void(int attempt)>& body) {
  GuardOutcome outcome;
  for (int attempt = 1;; ++attempt) {
    outcome.attempts = attempt;
    outcome.retries = attempt - 1;
    try {
      body(attempt);
      outcome.ok = true;
      return outcome;
    } catch (const std::exception& e) {
      outcome.error_class = classify(e);
      outcome.message = e.what();
    } catch (...) {
      outcome.error_class = ErrorClass::kPermanent;
      outcome.message = "unknown exception";
    }
    if (outcome.error_class != ErrorClass::kTransient ||
        outcome.retries >= policy.max_retries)
      return outcome;
    outcome.backoff_seconds += policy.backoff_delay(attempt);
  }
}

}  // namespace fault
}  // namespace pals
