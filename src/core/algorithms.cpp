#include "core/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace pals {

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMax: return "MAX";
    case Algorithm::kAvg: return "AVG";
    case Algorithm::kEnergyOptimalMax: return "EOPT-MAX";
  }
  throw Error("invalid Algorithm enum value");
}

void AlgorithmConfig::validate() const {
  PALS_CHECK_MSG(beta >= 0.0 && beta <= 1.0, "beta must lie in [0, 1]");
  PALS_CHECK_MSG(nominal_fmax_ghz > 0.0, "nominal fmax must be positive");
  PALS_CHECK_MSG(gear_set.fmax() > 0.0, "gear set has no usable frequencies");
}

std::size_t FrequencyAssignment::overclocked_count(
    double nominal_fmax_ghz) const {
  std::size_t n = 0;
  for (const Gear& g : gears)
    if (g.frequency_ghz > nominal_fmax_ghz + 1e-12) ++n;
  return n;
}

double FrequencyAssignment::overclocked_fraction(
    double nominal_fmax_ghz) const {
  if (gears.empty()) return 0.0;
  return static_cast<double>(overclocked_count(nominal_fmax_ghz)) /
         static_cast<double>(gears.size());
}

double ideal_frequency(Seconds time, Seconds target, double fref_ghz,
                       double beta) {
  PALS_CHECK_MSG(time >= 0.0, "computation time must be non-negative");
  PALS_CHECK_MSG(target > 0.0, "target time must be positive");
  PALS_CHECK_MSG(fref_ghz > 0.0, "reference frequency must be positive");
  if (time == 0.0) return 0.0;  // no computation: run as slowly as possible
  const double s = target / time;  // allowed stretch factor
  if (beta == 0.0) {
    // Frequency does not affect execution time at all.
    if (s >= 1.0) return 0.0;  // any frequency meets the target
    return std::numeric_limits<double>::infinity();  // speed-up impossible
  }
  const double denom = s - 1.0 + beta;
  if (denom <= 0.0) {
    // Even f -> infinity only reaches a stretch of (1 - beta).
    return std::numeric_limits<double>::infinity();
  }
  return fref_ghz * beta / denom;
}

namespace {

/// Snap an ideal frequency into the gear set. Ideal values of 0 mean
/// "anything goes" (use fmin); +inf means "fastest available" (use fmax).
Gear choose_gear(const GearSet& set, double ideal, SnapPolicy policy) {
  if (ideal <= 0.0) return set.operating_point(set.fmin());
  if (std::isinf(ideal)) return set.operating_point(set.fmax());
  return policy == SnapPolicy::kUp ? set.operating_point(ideal)
                                   : set.operating_point_nearest(ideal);
}

/// Stretch factor of the time model at frequency f.
double stretch(double f_ghz, double fref_ghz, double beta) {
  return beta * (fref_ghz / f_ghz - 1.0) + 1.0;
}

FrequencyAssignment assign_for_target(
    std::span<const Seconds> computation_time, Seconds target,
    const AlgorithmConfig& config) {
  FrequencyAssignment out;
  out.target_time = target;
  out.gears.reserve(computation_time.size());
  out.ideal_frequency_ghz.reserve(computation_time.size());
  out.predicted_time.reserve(computation_time.size());
  for (const Seconds t : computation_time) {
    const double ideal =
        ideal_frequency(t, target, config.nominal_fmax_ghz, config.beta);
    const Gear gear = choose_gear(config.gear_set, ideal, config.snap_policy);
    out.ideal_frequency_ghz.push_back(ideal);
    out.gears.push_back(gear);
    out.predicted_time.push_back(
        t * stretch(gear.frequency_ghz, config.nominal_fmax_ghz, config.beta));
  }
  return out;
}

}  // namespace

FrequencyAssignment assign_frequencies(
    std::span<const Seconds> computation_time, const AlgorithmConfig& config) {
  config.validate();
  PALS_CHECK_MSG(!computation_time.empty(), "no ranks to assign");
  for (const Seconds t : computation_time)
    PALS_CHECK_MSG(t >= 0.0, "negative computation time");

  const Seconds t_max =
      *std::max_element(computation_time.begin(), computation_time.end());
  PALS_CHECK_MSG(t_max > 0.0, "all ranks have zero computation");
  PALS_CHECK_MSG(config.algorithm != Algorithm::kEnergyOptimalMax,
                 "use assign_frequencies_energy_optimal (it needs a power "
                 "model)");

  Seconds target = t_max;
  if (config.algorithm == Algorithm::kAvg) {
    const Seconds t_avg =
        std::accumulate(computation_time.begin(), computation_time.end(),
                        0.0) /
        static_cast<double>(computation_time.size());
    // Smallest computation time the heaviest rank can attain at the
    // fastest allowed (possibly over-clocked) frequency.
    const Seconds attainable =
        t_max *
        stretch(config.gear_set.fmax(), config.nominal_fmax_ghz, config.beta);
    target = std::max(t_avg, attainable);
  }
  return assign_for_target(computation_time, target, config);
}

std::vector<FrequencyAssignment> assign_frequencies_per_phase(
    const std::vector<std::vector<Seconds>>& computation_time,
    const AlgorithmConfig& config) {
  PALS_CHECK_MSG(!computation_time.empty(), "no phases to assign");
  std::vector<FrequencyAssignment> out;
  out.reserve(computation_time.size());
  for (const auto& phase_times : computation_time)
    out.push_back(assign_frequencies(phase_times, config));
  return out;
}

FrequencyAssignment assign_frequencies_energy_optimal(
    std::span<const Seconds> computation_time, const AlgorithmConfig& config,
    const PowerModelConfig& power_config) {
  config.validate();
  PALS_CHECK_MSG(!config.gear_set.is_continuous(),
                 "energy-optimal assignment enumerates discrete gears; use "
                 "core/bound.hpp for the continuous case");
  PALS_CHECK_MSG(!computation_time.empty(), "no ranks to assign");
  PALS_CHECK_MSG(power_config.beta == config.beta,
                 "algorithm beta and power-model beta must agree");
  const PowerModel power(power_config);

  const Seconds t_max =
      *std::max_element(computation_time.begin(), computation_time.end());
  PALS_CHECK_MSG(t_max > 0.0, "all ranks have zero computation");

  FrequencyAssignment out;
  out.target_time = t_max;
  out.gears.reserve(computation_time.size());
  out.ideal_frequency_ghz.reserve(computation_time.size());
  out.predicted_time.reserve(computation_time.size());
  for (const Seconds t : computation_time) {
    // The execution window every rank lives in is the MAX target; the
    // rank computes for its stretched time and idles (communication
    // activity) for the rest.
    const Gear* best = nullptr;
    Seconds best_time = 0.0;
    double best_energy = std::numeric_limits<double>::infinity();
    for (const Gear& gear : config.gear_set.gears()) {
      if (gear.frequency_ghz > config.nominal_fmax_ghz + 1e-12)
        continue;  // no over-clocking under the MAX contract
      const Seconds stretched =
          t * stretch(gear.frequency_ghz, config.nominal_fmax_ghz,
                      config.beta);
      const bool feasible =
          stretched <= t_max + 1e-12 ||
          gear.frequency_ghz >= config.nominal_fmax_ghz - 1e-12;
      if (!feasible) continue;
      const double energy =
          stretched * power.total_power(gear, /*computing=*/true) +
          std::max(0.0, t_max - stretched) *
              power.total_power(gear, /*computing=*/false);
      if (energy < best_energy) {
        best_energy = energy;
        best = &gear;
        best_time = stretched;
      }
    }
    PALS_CHECK_MSG(best != nullptr, "no feasible gear found");
    out.gears.push_back(*best);
    out.ideal_frequency_ghz.push_back(best->frequency_ghz);
    out.predicted_time.push_back(best_time);
  }
  return out;
}

std::vector<Seconds> slack_times(std::span<const Seconds> computation_time) {
  PALS_CHECK_MSG(!computation_time.empty(), "no ranks");
  const Seconds t_max =
      *std::max_element(computation_time.begin(), computation_time.end());
  std::vector<Seconds> slack;
  slack.reserve(computation_time.size());
  for (const Seconds t : computation_time) slack.push_back(t_max - t);
  return slack;
}

}  // namespace pals
