#include "core/jitter.hpp"

#include <algorithm>

#include "trace/transform.hpp"
#include "util/error.hpp"

namespace pals {

void JitterConfig::validate() const {
  PALS_CHECK_MSG(!gear_set.is_continuous(),
                 "the Jitter runtime steps through discrete gears");
  PALS_CHECK_MSG(gear_set.size() >= 2, "need at least two gears to shift");
  PALS_CHECK_MSG(slack_threshold > 0.0 && slack_threshold < 1.0,
                 "slack threshold must lie in (0, 1)");
  PALS_CHECK_MSG(transition_penalty >= 0.0,
                 "transition penalty must be non-negative");
  power.validate();
  replay.validate();
}

JitterResult run_jitter(const Trace& trace, const JitterConfig& config) {
  config.validate();
  const PowerModel power(config.power);
  const auto n = static_cast<std::size_t>(trace.n_ranks());
  const auto gears = config.gear_set.gears();
  const std::size_t top = gears.size() - 1;

  const std::vector<std::vector<Seconds>> base_times =
      iteration_computation_times(trace);
  PALS_CHECK_MSG(!base_times.empty(), "trace has no iterations");

  // Per-rank gear index, starting at the top gear.
  std::vector<std::size_t> gear_index(n, top);
  JitterResult result;
  result.schedule.reserve(base_times.size());
  std::vector<std::vector<double>> factors(
      base_times.size(), std::vector<double>(n, 1.0));
  std::vector<std::vector<Seconds>> stalls(
      base_times.size(), std::vector<Seconds>(n, 0.0));

  for (std::size_t iteration = 0; iteration < base_times.size();
       ++iteration) {
    if (iteration > 0) {
      // Observe the previous iteration under the gears it actually ran.
      const auto& base = base_times[iteration - 1];
      std::vector<Seconds> observed(n);
      for (std::size_t r = 0; r < n; ++r)
        observed[r] =
            base[r] *
            power.time_scale(gears[gear_index[r]].frequency_ghz);
      const Seconds t_max =
          *std::max_element(observed.begin(), observed.end());
      if (t_max > 0.0) {
        for (std::size_t r = 0; r < n; ++r) {
          const double slack = (t_max - observed[r]) / t_max;
          if (slack > config.slack_threshold && gear_index[r] > 0) {
            // Shift down only if the slower gear still fits the critical
            // path (predicted with the same time model).
            const double predicted =
                base[r] * power.time_scale(
                              gears[gear_index[r] - 1].frequency_ghz);
            if (predicted <= t_max) {
              --gear_index[r];
              ++result.gear_shifts;
              stalls[iteration][r] = config.transition_penalty;
            }
          } else if (slack < config.slack_threshold / 2.0 &&
                     gear_index[r] < top) {
            // A rank on (or near) the critical path jumps straight back to
            // the top gear: under drifting imbalance a one-step climb
            // would stretch the critical path for several iterations.
            gear_index[r] = top;
            ++result.gear_shifts;
            stalls[iteration][r] = config.transition_penalty;
          }
        }
      }
    }
    std::vector<Gear> iteration_gears(n);
    for (std::size_t r = 0; r < n; ++r) {
      iteration_gears[r] = gears[gear_index[r]];
      factors[iteration][r] =
          power.time_scale(iteration_gears[r].frequency_ghz);
    }
    result.schedule.push_back(std::move(iteration_gears));
  }

  result.baseline_replay = replay(trace, config.replay);
  result.baseline_time = result.baseline_replay.makespan;
  result.baseline_energy =
      power.baseline_energy(result.baseline_replay.timeline);

  // Scale first, then insert transition stalls: the stall is wall-clock
  // time independent of the chosen frequency.
  Trace scaled = scale_compute_per_iteration(trace, factors);
  if (config.transition_penalty > 0.0)
    scaled = add_iteration_overhead(scaled, stalls);
  result.scaled_replay = replay(scaled, config.replay);
  result.scaled_time = result.scaled_replay.makespan;
  const std::vector<Gear> fallback(n, config.power.reference);
  result.scaled_energy = power.scheduled_energy(
      result.scaled_replay.timeline, result.schedule, fallback);
  return result;
}

}  // namespace pals
