// Dynamic per-iteration DVFS runtime — a Jitter-style counterpart to the
// static MAX algorithm (Kappiah et al., SC'05; the paper's §2 notes MAX
// is "a static version of this approach").
//
// The simulated runtime starts every rank at the top gear, observes each
// iteration's per-rank computation times, and before the next iteration:
//   * steps a rank one gear *down* when its relative slack exceeds a
//     threshold and the next-lower gear still fits inside the critical
//     path (predicted with the β time model);
//   * jumps a rank straight back to the *top* gear when it has (almost)
//     no slack — gradual climbing would stretch the critical path for
//     several iterations when the imbalance pattern moves.
//
// Unlike the static algorithms, this adapts when the imbalance pattern
// drifts across iterations (see workloads/amr_drift.cpp).
#pragma once

#include <vector>

#include "core/algorithms.hpp"
#include "power/power_model.hpp"
#include "replay/replay.hpp"
#include "trace/trace.hpp"

namespace pals {

struct JitterConfig {
  /// Discrete gear set the runtime steps through.
  GearSet gear_set = paper_uniform(6);
  /// Minimum relative slack ((Tmax − T)/Tmax) before shifting down.
  double slack_threshold = 0.05;
  /// A rank with slack below threshold/2 is considered critical and
  /// shifts back up (hysteresis band in between).
  PowerModelConfig power;
  ReplayConfig replay;
  /// Wall-clock stall a rank pays at the start of an iteration in which
  /// its gear changed (voltage regulators need O(10-100 us) per switch;
  /// 0 = free switching, the paper's implicit assumption).
  Seconds transition_penalty = 0.0;

  void validate() const;
};

struct JitterResult {
  /// Gear of every rank during every iteration: schedule[iteration][rank].
  std::vector<std::vector<Gear>> schedule;
  /// Total number of gear shifts performed across the run.
  std::size_t gear_shifts = 0;

  Seconds baseline_time = 0.0;
  double baseline_energy = 0.0;
  Seconds scaled_time = 0.0;
  double scaled_energy = 0.0;

  double normalized_energy() const { return scaled_energy / baseline_energy; }
  double normalized_time() const { return scaled_time / baseline_time; }
  double normalized_edp() const {
    return normalized_energy() * normalized_time();
  }

  ReplayResult baseline_replay;
  ReplayResult scaled_replay;
};

/// Simulate the dynamic runtime on an iteration-marked trace.
JitterResult run_jitter(const Trace& trace, const JitterConfig& config);

}  // namespace pals
