// Replay-engine hooks for online DVFS controllers.
//
// The classic pipeline (core/pipeline.hpp) assigns one gear per rank and
// rescales the whole trace. This variant drives a pals::Controller through
// the iteration-marked trace instead: the controller is seeded with the
// whole-run profile, then after every simulated iteration it observes the
// per-rank compute times under the gears that actually ran and picks the
// gears for the next iteration. Gear changes take effect at iteration
// boundaries and optionally charge a DVFS transition latency (a wall-clock
// stall inserted after the iteration-begin marker) and a per-switch
// regulator energy.
//
// Unmarked traces cannot carry a per-iteration schedule; instead of
// throwing (the latent analyze_iterations gap), the run degrades to the
// whole-run static assignment and reports fell_back_static.
#pragma once

#include <vector>

#include "core/controllers.hpp"
#include "core/pipeline.hpp"

namespace pals {

/// What the controller actually did during the simulated run.
struct ControllerRun {
  /// Per-iteration, per-rank gears (schedule[i][rank]); one row per
  /// iteration of the trace. Empty when the run fell back to static.
  std::vector<std::vector<Gear>> schedule;
  /// Iterations the controller saw (== schedule.size(), 0 on fallback).
  std::size_t iterations = 0;
  /// Gear changes between consecutive iterations, summed over ranks.
  std::size_t switches = 0;
  /// The trace carried no iteration markers: the run used the whole-run
  /// static assignment instead of the controller.
  bool fell_back_static = false;
  /// Total wall-clock stall injected for gear transitions (seconds,
  /// before DVFS scaling of the surrounding bursts).
  Seconds transition_stall_seconds = 0.0;
  /// Total regulator energy charged for gear switches (energy-units,
  /// already included in the pipeline's scaled_energy).
  double transition_energy = 0.0;
};

struct ControllerPipelineResult {
  PipelineResult pipeline;
  ControllerRun controller;
};

/// Run the controller-driven pipeline. `config.controller.kind` selects
/// the policy; kStatic is valid here (the adapter reproduces the one-shot
/// assignment through the controller machinery, useful for A/B tests).
ControllerPipelineResult run_controller_pipeline(const Trace& trace,
                                                 const PipelineConfig& config);

/// Same, reusing a precomputed baseline replay (sweep engine fast path).
ControllerPipelineResult run_controller_pipeline(const Trace& trace,
                                                 const PipelineConfig& config,
                                                 const ReplayResult& baseline);

}  // namespace pals
