// Whole-system energy view — quantifies the paper's concluding argument:
// "the new [AVG] algorithm has a higher potential to save overall system
// energy because it reduces the execution time."
//
// The CPU makes ~45-55 % of total system power (paper §3.2, citing the
// Jitter paper); the rest (memory, disks, NIC, PSU losses, fans) is
// modelled as a constant per-node draw that runs for the whole execution.
// DVFS lowers only the CPU term, but a shorter execution (AVG) also cuts
// the rest-of-system term.
#pragma once

#include "core/pipeline.hpp"
#include "power/power_model.hpp"

namespace pals {

struct SystemEnergyConfig {
  /// Fraction of total node power drawn by the CPU when computing at the
  /// reference gear (paper: 45-55 %; default the midpoint).
  double cpu_fraction = 0.5;
  PowerModelConfig power;

  void validate() const;

  /// Constant non-CPU power per rank (energy-units/s), calibrated so the
  /// CPU is `cpu_fraction` of node power at the reference operating point.
  double rest_of_system_power() const;
};

/// Total system energy for an execution: CPU energy + rest-of-system
/// power for every rank over the whole execution time.
double system_energy(double cpu_energy, Seconds execution_time, Rank n_ranks,
                     const SystemEnergyConfig& config);

struct SystemView {
  double normalized_cpu_energy = 0.0;
  double normalized_system_energy = 0.0;
  double normalized_time = 0.0;
};

/// System-level reading of a pipeline result.
SystemView system_view(const PipelineResult& result,
                       const SystemEnergyConfig& config);

}  // namespace pals
