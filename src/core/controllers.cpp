#include "core/controllers.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace pals {

std::string to_string(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kStatic: return "static";
    case ControllerKind::kDynamicMax: return "dynamic_max";
    case ControllerKind::kDynamicAvg: return "dynamic_avg";
    case ControllerKind::kSlack: return "slack";
    case ControllerKind::kEwma: return "ewma";
  }
  throw Error("invalid ControllerKind enum value");
}

ControllerKind controller_by_name(const std::string& name) {
  if (name == "static") return ControllerKind::kStatic;
  if (name == "dynamic_max") return ControllerKind::kDynamicMax;
  if (name == "dynamic_avg") return ControllerKind::kDynamicAvg;
  if (name == "slack") return ControllerKind::kSlack;
  if (name == "ewma") return ControllerKind::kEwma;
  throw Error("unknown controller '" + name +
              "' (try static, dynamic_max, dynamic_avg, slack, ewma)");
}

std::vector<std::string> controller_names() {
  return {"static", "dynamic_max", "dynamic_avg", "slack", "ewma"};
}

void ControllerOptions::validate() const {
  PALS_CHECK_MSG(transition_latency >= 0.0,
                 "transition latency must be non-negative");
  PALS_CHECK_MSG(transition_energy >= 0.0,
                 "transition energy must be non-negative");
  PALS_CHECK_MSG(slack_threshold > 0.0 && slack_threshold < 1.0,
                 "slack threshold must lie in (0, 1)");
  PALS_CHECK_MSG(hysteresis >= 0.0 && hysteresis < 1.0,
                 "hysteresis must lie in [0, 1)");
  PALS_CHECK_MSG(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
                 "ewma alpha must lie in (0, 1]");
}

namespace {

/// Shared plumbing: the one-shot solve (dispatching on algorithm) and the
/// load-vector reconstruction from DVFS-stretched observations.
class ControllerBase : public Controller {
 public:
  ControllerBase(const ControllerOptions& options,
                 const AlgorithmConfig& algorithm,
                 const PowerModelConfig& power)
      : options_(options), algorithm_(algorithm), model_(power) {}

 protected:
  std::vector<Gear> solve(std::span<const Seconds> loads) const {
    const FrequencyAssignment assignment =
        algorithm_.algorithm == Algorithm::kEnergyOptimalMax
            ? assign_frequencies_energy_optimal(loads, algorithm_,
                                                model_.config())
            : assign_frequencies(loads, algorithm_);
    return assignment.gears;
  }

  /// Invert the β time model: the reference-frequency load that produced
  /// `observed` seconds at `gear`.
  std::vector<Seconds> reconstruct_loads(
      const IterationObservation& obs) const {
    std::vector<Seconds> loads(obs.observed_compute.size());
    for (std::size_t r = 0; r < loads.size(); ++r) {
      const double scale =
          model_.time_scale(obs.applied_gears[r].frequency_ghz);
      loads[r] = scale > 0.0 ? obs.observed_compute[r] / scale : 0.0;
    }
    return loads;
  }

  static Seconds max_time(std::span<const Seconds> times) {
    Seconds t = 0.0;
    for (const Seconds x : times) t = std::max(t, x);
    return t;
  }

  ControllerOptions options_;
  AlgorithmConfig algorithm_;
  PowerModel model_;
};

/// Degenerate adapter: solve the configured one-shot algorithm on the
/// whole-run profile and hold the assignment forever. Reproduces the
/// paper's MAX/AVG (and kEnergyOptimalMax) gear-for-gear.
class StaticController final : public ControllerBase {
 public:
  using ControllerBase::ControllerBase;

  std::string name() const override { return "static"; }

  std::vector<Gear> start(const ControllerSeed& seed) override {
    gears_ = solve(seed.total_compute);
    return gears_;
  }

  std::vector<Gear> observe(const IterationObservation&) override {
    return gears_;
  }

 private:
  std::vector<Gear> gears_;
};

/// Per-iteration re-solve of a fixed one-shot algorithm on the previous
/// iteration's reconstructed load vector. On a drift-free trace every
/// re-solve reproduces the static assignment (property-tested).
class ResolveController final : public ControllerBase {
 public:
  ResolveController(const ControllerOptions& options,
                    const AlgorithmConfig& algorithm,
                    const PowerModelConfig& power, Algorithm resolve_as,
                    std::string name)
      : ControllerBase(options, algorithm, power), name_(std::move(name)) {
    algorithm_.algorithm = resolve_as;
  }

  std::string name() const override { return name_; }

  std::vector<Gear> start(const ControllerSeed& seed) override {
    return solve(seed.total_compute);
  }

  std::vector<Gear> observe(const IterationObservation& obs) override {
    const std::vector<Seconds> loads = reconstruct_loads(obs);
    if (max_time(loads) <= 0.0) return obs.applied_gears;  // no signal
    return solve(loads);
  }

 private:
  std::string name_;
};

/// Proportional slack tracker with hysteresis and a gear-switch cost
/// model. A rank whose relative slack exceeds the threshold re-targets
/// the observed critical path *minus a safety margin of one threshold*
/// (ideal_frequency + snap-up), so a slowly drifting load has headroom
/// before it touches the critical path; a rank whose slack falls below
/// threshold·hysteresis jumps back to the nominal-speed gear in one step
/// (gradual climbing would stretch the critical path for several
/// iterations under drifting imbalance), and because the jump fires
/// while the rank still has threshold·hysteresis of slack, a drift
/// slower than that per iteration never crosses the critical path at
/// all. Down-shifts only happen when the predicted per-iteration energy
/// saving exceeds the transition cost, so expensive regulators
/// naturally damp oscillation.
class SlackController final : public ControllerBase {
 public:
  using ControllerBase::ControllerBase;

  std::string name() const override { return "slack"; }

  std::vector<Gear> start(const ControllerSeed& seed) override {
    // Profile-seeded: begin from the static MAX solution instead of the
    // top gear, so drift-free runs never pay a convergence transient.
    AlgorithmConfig max_config = algorithm_;
    max_config.algorithm = Algorithm::kMax;
    return assign_frequencies(seed.total_compute, max_config).gears;
  }

  std::vector<Gear> observe(const IterationObservation& obs) override {
    const Seconds t_max = max_time(obs.observed_compute);
    if (t_max <= 0.0) return obs.applied_gears;
    const std::vector<Seconds> loads = reconstruct_loads(obs);
    std::vector<Gear> next = obs.applied_gears;
    for (std::size_t r = 0; r < next.size(); ++r) {
      const double slack = (t_max - obs.observed_compute[r]) / t_max;
      if (slack > options_.slack_threshold) {
        const Seconds target =
            (1.0 - options_.slack_threshold) * t_max;
        const double ideal =
            ideal_frequency(loads[r], target, algorithm_.nominal_fmax_ghz,
                            algorithm_.beta);
        if (ideal <= 0.0 || std::isinf(ideal)) continue;
        const Gear candidate = algorithm_.gear_set.operating_point(ideal);
        if (candidate.frequency_ghz <
                next[r].frequency_ghz - 1e-12 &&
            switch_pays_off(loads[r], next[r], candidate, t_max)) {
          next[r] = candidate;
        }
      } else if (slack < options_.slack_threshold * options_.hysteresis) {
        // On (or near) the critical path: restore nominal speed. The
        // snap-up of the nominal fmax is the slowest gear that is not
        // slower than the reference — never an over-clock the time
        // contract did not ask for.
        const Gear top =
            algorithm_.gear_set.operating_point(algorithm_.nominal_fmax_ghz);
        if (next[r].frequency_ghz < top.frequency_ghz - 1e-12) next[r] = top;
      }
    }
    return next;
  }

 private:
  /// Energy of one rank over a window of `span` seconds: computing for
  /// the stretched load, waiting (at communication activity) after.
  double window_energy(Seconds load, const Gear& gear, Seconds span) const {
    const Seconds busy =
        std::min(span, load * model_.time_scale(gear.frequency_ghz));
    return model_.total_power(gear, true) * busy +
           model_.total_power(gear, false) * std::max(span - busy, 0.0);
  }

  bool switch_pays_off(Seconds load, const Gear& from, const Gear& to,
                       Seconds span) const {
    const double gain =
        window_energy(load, from, span) - window_energy(load, to, span);
    // The stall burns compute-level power at the new gear on top of the
    // per-switch regulator energy.
    const double cost =
        options_.transition_energy +
        options_.transition_latency * model_.total_power(to, true);
    return gain > cost;
  }
};

/// EWMA load predictor feeding the re-solver: the smoothed load vector
/// tracks slow drift while averaging out per-iteration jitter that would
/// make the plain re-solver thrash.
class EwmaController final : public ControllerBase {
 public:
  using ControllerBase::ControllerBase;

  std::string name() const override { return "ewma"; }

  std::vector<Gear> start(const ControllerSeed& seed) override {
    // Seed the filter with the per-iteration average so the first real
    // observation mixes comparable magnitudes.
    smoothed_ = seed.total_compute;
    if (seed.iterations > 1) {
      const double inv = 1.0 / static_cast<double>(seed.iterations);
      for (Seconds& s : smoothed_) s *= inv;
    }
    return solve(smoothed_);
  }

  std::vector<Gear> observe(const IterationObservation& obs) override {
    const std::vector<Seconds> loads = reconstruct_loads(obs);
    for (std::size_t r = 0; r < smoothed_.size(); ++r) {
      smoothed_[r] = options_.ewma_alpha * loads[r] +
                     (1.0 - options_.ewma_alpha) * smoothed_[r];
    }
    if (max_time(smoothed_) <= 0.0) return obs.applied_gears;
    return solve(smoothed_);
  }

 private:
  std::vector<Seconds> smoothed_;
};

}  // namespace

std::unique_ptr<Controller> make_controller(const ControllerOptions& options,
                                            const AlgorithmConfig& algorithm,
                                            const PowerModelConfig& power) {
  options.validate();
  switch (options.kind) {
    case ControllerKind::kStatic:
      return std::make_unique<StaticController>(options, algorithm, power);
    case ControllerKind::kDynamicMax:
      return std::make_unique<ResolveController>(
          options, algorithm, power, Algorithm::kMax, "dynamic_max");
    case ControllerKind::kDynamicAvg:
      return std::make_unique<ResolveController>(
          options, algorithm, power, Algorithm::kAvg, "dynamic_avg");
    case ControllerKind::kSlack:
      return std::make_unique<SlackController>(options, algorithm, power);
    case ControllerKind::kEwma:
      return std::make_unique<EwmaController>(options, algorithm, power);
  }
  throw Error("invalid ControllerKind enum value");
}

}  // namespace pals
