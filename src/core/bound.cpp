#include "core/bound.hpp"

#include <algorithm>
#include <cmath>

#include "core/algorithms.hpp"
#include "util/error.hpp"

namespace pals {

void EnergyBoundConfig::validate() const {
  power.validate();
  PALS_CHECK_MSG(fmin_ghz > 0.0 && fmin_ghz <= fmax_ghz,
                 "bound needs 0 < fmin <= fmax");
  PALS_CHECK_MSG(fmax_ghz <= power.reference.frequency_ghz + 1e-12,
                 "the bound does not model over-clocking");
}

namespace {

/// Rank energy over a fixed interval of length `total` when computing for
/// `compute_time` at gear implied by frequency f (linear paper V(f)).
double rank_energy_at(const PowerModel& power, const VoltageModel& vm,
                      double f_ghz, Seconds compute_time, Seconds total) {
  const Gear gear = vm.gear(f_ghz);
  return compute_time * power.total_power(gear, /*computing=*/true) +
         (total - compute_time) * power.total_power(gear, /*computing=*/false);
}

}  // namespace

EnergyBound energy_saving_bound(std::span<const Seconds> computation_time,
                                Seconds total_time, double allowed_slowdown,
                                const EnergyBoundConfig& config) {
  config.validate();
  PALS_CHECK_MSG(!computation_time.empty(), "no ranks");
  PALS_CHECK_MSG(allowed_slowdown >= 0.0, "negative allowed slowdown");
  const Seconds t_max =
      *std::max_element(computation_time.begin(), computation_time.end());
  PALS_CHECK_MSG(t_max > 0.0, "all ranks have zero computation");
  // Snapped/gear-discretized callers legitimately hand a total_time an
  // ulp under the critical compute time (the replayed makespan and the
  // compute profile round independently); refuse only a real deficit.
  PALS_CHECK_MSG(total_time >= t_max * (1.0 - 1e-9),
                 "total time below the critical computation time");

  const PowerModel power(config.power);
  const VoltageModel vm = VoltageModel::paper_default();
  const double fref = config.power.reference.frequency_ghz;
  const double beta = config.power.beta;

  // Communication/synchronization outside computation is frequency
  // independent; the computation budget absorbs the whole allowed delay.
  // When fmax sits below the reference frequency even running flat out
  // stretches the critical rank beyond that budget; relax to that floor
  // so every rank keeps an admissible frequency and predicted_time
  // reports the honest synchronized finish instead of under-reporting.
  const Seconds comm = std::max(0.0, total_time - t_max);
  const double stretch_at_fmax =
      beta * (fref / config.fmax_ghz - 1.0) + 1.0;
  const Seconds compute_budget =
      std::max((1.0 + allowed_slowdown) * total_time - comm,
               t_max * stretch_at_fmax);
  const Seconds new_total = compute_budget + comm;

  EnergyBound bound;
  bound.predicted_time = new_total;
  bound.frequency_ghz.reserve(computation_time.size());

  double energy = 0.0;
  double baseline_energy = 0.0;
  for (const Seconds t : computation_time) {
    baseline_energy += rank_energy_at(power, vm, fref, t, total_time);
    if (t == 0.0) {
      bound.frequency_ghz.push_back(config.fmin_ghz);
      energy +=
          rank_energy_at(power, vm, config.fmin_ghz, 0.0, new_total);
      continue;
    }
    // Lowest admissible frequency: computation must fit the budget
    // (ideal_frequency returns 0 for "any frequency works" and +inf for
    // "unreachable"; clamp maps those onto the range ends).
    const double f_required =
        ideal_frequency(t, compute_budget, fref, beta);
    const double f_lo =
        std::clamp(f_required, config.fmin_ghz, config.fmax_ghz);
    // Grid + local refinement over [f_lo, fmax]: energy is smooth in f.
    double best_f = config.fmax_ghz;
    double best_e = rank_energy_at(
        power, vm, best_f,
        t * (beta * (fref / best_f - 1.0) + 1.0), new_total);
    constexpr int kGrid = 512;
    for (int i = 0; i <= kGrid; ++i) {
      const double f =
          f_lo + (config.fmax_ghz - f_lo) * static_cast<double>(i) / kGrid;
      const Seconds stretched = t * (beta * (fref / f - 1.0) + 1.0);
      const double e = rank_energy_at(power, vm, f, stretched, new_total);
      if (e < best_e) {
        best_e = e;
        best_f = f;
      }
    }
    bound.frequency_ghz.push_back(best_f);
    energy += best_e;
  }
  bound.normalized_energy = energy / baseline_energy;
  return bound;
}

}  // namespace pals
