#include "core/system_energy.hpp"

#include "util/error.hpp"

namespace pals {

void SystemEnergyConfig::validate() const {
  PALS_CHECK_MSG(cpu_fraction > 0.0 && cpu_fraction <= 1.0,
                 "cpu fraction must lie in (0, 1]");
  power.validate();
}

double SystemEnergyConfig::rest_of_system_power() const {
  const PowerModel model(power);
  const double cpu_ref = model.total_power(power.reference,
                                           /*computing=*/true);
  return cpu_ref * (1.0 / cpu_fraction - 1.0);
}

double system_energy(double cpu_energy, Seconds execution_time, Rank n_ranks,
                     const SystemEnergyConfig& config) {
  config.validate();
  PALS_CHECK_MSG(cpu_energy >= 0.0, "negative CPU energy");
  PALS_CHECK_MSG(execution_time >= 0.0, "negative execution time");
  PALS_CHECK_MSG(n_ranks > 0, "need at least one rank");
  return cpu_energy + config.rest_of_system_power() *
                          static_cast<double>(n_ranks) * execution_time;
}

SystemView system_view(const PipelineResult& result,
                       const SystemEnergyConfig& config) {
  const Rank n = static_cast<Rank>(result.computation_time.size());
  SystemView view;
  view.normalized_cpu_energy = result.normalized_energy();
  view.normalized_time = result.normalized_time();
  const double baseline = system_energy(result.baseline_energy,
                                        result.baseline_time, n, config);
  const double scaled =
      system_energy(result.scaled_energy, result.scaled_time, n, config);
  view.normalized_system_energy = scaled / baseline;
  return view;
}

}  // namespace pals
