#include "core/pipeline.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "core/controller_pipeline.hpp"
#include "lint/lint.hpp"
#include "obs/span.hpp"
#include "trace/transform.hpp"
#include "util/error.hpp"

namespace pals {

void PipelineConfig::validate() const {
  algorithm.validate();
  power.validate();
  replay.validate();
  controller.validate();
  PALS_CHECK_MSG(!per_phase || controller.kind == ControllerKind::kStatic,
                 "per-phase assignment and online controllers are mutually "
                 "exclusive");
  PALS_CHECK_MSG(algorithm.beta == power.beta,
                 "algorithm beta (" << algorithm.beta
                                    << ") and power-model beta ("
                                    << power.beta
                                    << ") must agree");
  PALS_CHECK_MSG(
      algorithm.nominal_fmax_ghz == power.reference.frequency_ghz,
      "algorithm nominal fmax and power-model reference frequency must agree");
}

double load_balance(std::span<const Seconds> computation_time) {
  PALS_CHECK_MSG(!computation_time.empty(), "no ranks");
  const Seconds total =
      std::accumulate(computation_time.begin(), computation_time.end(), 0.0);
  const Seconds t_max =
      *std::max_element(computation_time.begin(), computation_time.end());
  PALS_CHECK_MSG(t_max > 0.0, "all ranks have zero computation");
  return total / (static_cast<double>(computation_time.size()) * t_max);
}

double parallel_efficiency(std::span<const Seconds> computation_time,
                           Seconds total_time) {
  PALS_CHECK_MSG(!computation_time.empty(), "no ranks");
  PALS_CHECK_MSG(total_time > 0.0, "total time must be positive");
  const Seconds total =
      std::accumulate(computation_time.begin(), computation_time.end(), 0.0);
  return total / (static_cast<double>(computation_time.size()) * total_time);
}

namespace {

/// The opt-in PipelineConfig::lint hook: verify the trace statically and
/// abort with the exhaustive report instead of a mid-replay throw.
void lint_input_trace(const Trace& trace, const PipelineConfig& config) {
  lint::LintOptions options;
  options.eager_threshold = config.replay.platform.eager_threshold;
  lint::enforce_lint(trace, options,
                     trace.name().empty() ? "pipeline input trace"
                                          : trace.name());
}

}  // namespace

namespace {

ReplayResult baseline_replay_phase(const Trace& trace,
                                   const PipelineConfig& config) {
  PALS_SPAN("pipeline.baseline_replay",
            config.observe ? &obs::default_registry() : nullptr);
  return replay(trace, config.replay);
}

}  // namespace

PipelineResult run_pipeline(const Trace& trace, const PipelineConfig& config) {
  config.validate();
  if (config.lint) {
    lint_input_trace(trace, config);
    PipelineConfig linted = config;
    linted.lint = false;  // already verified; skip the re-check below
    return run_pipeline(trace, linted, baseline_replay_phase(trace, linted));
  }
  return run_pipeline(trace, config, baseline_replay_phase(trace, config));
}

PipelineResult run_pipeline(const Trace& trace, const PipelineConfig& config,
                            const ReplayResult& baseline) {
  config.validate();
  if (config.lint) lint_input_trace(trace, config);
  if (config.controller.kind != ControllerKind::kStatic)
    return run_controller_pipeline(trace, config, baseline).pipeline;
  obs::default_registry().counter("pipeline.runs").add(1);
  obs::Registry* reg = config.observe ? &obs::default_registry() : nullptr;
  const PowerModel power(config.power);
  const auto n = static_cast<std::size_t>(trace.n_ranks());

  PipelineResult result;
  result.baseline_replay = baseline;
  result.baseline_time = result.baseline_replay.makespan;
  {
    PALS_SPAN("pipeline.energy", reg);
    result.baseline_energy =
        power.baseline_energy(result.baseline_replay.timeline);
  }
  result.computation_time = result.baseline_replay.compute_time;
  result.load_balance = load_balance(result.computation_time);
  result.parallel_efficiency =
      parallel_efficiency(result.computation_time, result.baseline_time);

  std::vector<Gear> rank_gears(n);
  std::vector<double> run_factors;                  ///< per_phase=false
  std::vector<std::vector<double>> phase_factors;   ///< per_phase=true
  std::vector<double> default_factors;              ///< per_phase=true
  {
    PALS_SPAN("pipeline.assignment", reg);
    if (!config.per_phase) {
      result.assignment =
          config.algorithm.algorithm == Algorithm::kEnergyOptimalMax
              ? assign_frequencies_energy_optimal(result.computation_time,
                                                  config.algorithm,
                                                  config.power)
              : assign_frequencies(result.computation_time, config.algorithm);
      rank_gears = result.assignment.gears;
      run_factors.resize(n);
      for (std::size_t r = 0; r < n; ++r)
        run_factors[r] = power.time_scale(rank_gears[r].frequency_ghz);
      result.overclocked_fraction = result.assignment.overclocked_fraction(
          config.algorithm.nominal_fmax_ghz);
    } else {
      // One assignment per phase; bursts without a phase label follow the
      // whole-run assignment.
      const std::vector<std::int32_t> phases = trace.phases();
      PALS_CHECK_MSG(!phases.empty(),
                     "per-phase pipeline requires phase-labelled bursts");
      std::vector<std::vector<Seconds>> per_phase_times;
      per_phase_times.reserve(phases.size());
      for (const std::int32_t p : phases) {
        std::vector<Seconds> times(n);
        for (Rank r = 0; r < trace.n_ranks(); ++r)
          times[static_cast<std::size_t>(r)] = trace.computation_time(r, p);
        per_phase_times.push_back(std::move(times));
      }
      result.phase_assignments =
          assign_frequencies_per_phase(per_phase_times, config.algorithm);
      result.assignment =
          assign_frequencies(result.computation_time, config.algorithm);

      // Phase labels may be sparse (e.g. {0, 3}); build a dense lookup.
      const std::int32_t max_phase =
          *std::max_element(phases.begin(), phases.end());
      phase_factors.assign(
          n, std::vector<double>(static_cast<std::size_t>(max_phase) + 1, 1.0));
      default_factors.resize(n);
      std::size_t overclocked = 0;
      for (std::size_t r = 0; r < n; ++r) {
        default_factors[r] =
            power.time_scale(result.assignment.gears[r].frequency_ghz);
        bool rank_overclocked = false;
        for (std::size_t pi = 0; pi < phases.size(); ++pi) {
          const Gear& g = result.phase_assignments[pi].gears[r];
          phase_factors[r][static_cast<std::size_t>(phases[pi])] =
              power.time_scale(g.frequency_ghz);
          if (g.frequency_ghz > config.algorithm.nominal_fmax_ghz + 1e-12)
            rank_overclocked = true;
        }
        if (rank_overclocked) ++overclocked;
        // Unphased bursts and wait states are charged at the whole-run gear;
        // phase-labelled compute is charged exactly via phase_energy below.
        rank_gears[r] = result.assignment.gears[r];
      }
      result.overclocked_fraction =
          static_cast<double>(overclocked) / static_cast<double>(n);
    }
  }

  // gear_stuck faults override the algorithm's choice *after* assignment:
  // the affected rank's DVFS actuator is pinned to an extreme gear, so the
  // scaled replay and the energy integration both see the stuck frequency
  // (normalized metrics then compare degraded-vs-degraded runs).
  if (config.replay.faults != nullptr &&
      config.replay.faults->has_stuck_gears()) {
    for (std::size_t r = 0; r < n; ++r) {
      const std::optional<fault::StuckGear> stuck =
          config.replay.faults->stuck_gear(static_cast<Rank>(r));
      if (!stuck) continue;
      const Gear pinned = *stuck == fault::StuckGear::kMin
                              ? config.algorithm.gear_set.min_gear()
                              : config.algorithm.gear_set.max_gear();
      rank_gears[r] = pinned;
      result.assignment.gears[r] = pinned;
      const double factor = power.time_scale(pinned.frequency_ghz);
      if (!config.per_phase) {
        run_factors[r] = factor;
      } else {
        default_factors[r] = factor;
        for (double& f : phase_factors[r]) f = factor;
        for (FrequencyAssignment& a : result.phase_assignments)
          a.gears[r] = pinned;
      }
    }
    if (!config.per_phase)
      result.overclocked_fraction = result.assignment.overclocked_fraction(
          config.algorithm.nominal_fmax_ghz);
  }

  Trace scaled;
  {
    PALS_SPAN("pipeline.rescale", reg);
    scaled = config.per_phase
                 ? scale_compute_per_phase(trace, phase_factors,
                                           default_factors)
                 : scale_compute(trace, run_factors);
  }

  {
    PALS_SPAN("pipeline.scaled_replay", reg);
    result.scaled_replay = replay(scaled, config.replay);
  }
  result.scaled_time = result.scaled_replay.makespan;
  {
    PALS_SPAN("pipeline.energy", reg);
    if (!config.per_phase) {
      result.scaled_energy =
          power.total_energy(result.scaled_replay.timeline, rank_gears);
    } else {
      const std::vector<std::int32_t> phases = trace.phases();
      std::vector<std::vector<Gear>> phase_gears;
      phase_gears.reserve(result.phase_assignments.size());
      for (const FrequencyAssignment& a : result.phase_assignments)
        phase_gears.push_back(a.gears);
      result.scaled_energy = power.phase_energy(
          result.scaled_replay.timeline, phases, phase_gears, rank_gears);
    }
  }
  return result;
}

}  // namespace pals
