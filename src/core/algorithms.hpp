// Power-aware load-balancing algorithms (paper §3.1) — the core
// contribution.
//
// MAX (the static Jitter/Slack approach): pick, per rank, the lowest
// frequency at which its computation still finishes within the *maximum*
// original computation time. The most loaded rank stays at the top
// frequency; no rank is slowed past the critical path.
//
// AVG (the paper's new algorithm): balance computation times to the
// *average* original computation time instead. Ranks above the average are
// over-clocked. If the heaviest rank cannot reach the average even at the
// maximum allowed (over-clocked) frequency, the target is raised to the
// smallest attainable value, i.e. the closest to the average.
#pragma once

#include <span>
#include <vector>

#include "power/gearset.hpp"
#include "power/power_model.hpp"
#include "trace/types.hpp"

namespace pals {

/// kMax / kAvg are the paper's algorithms; kEnergyOptimalMax is our
/// refinement (see assign_frequencies_energy_optimal): same time contract
/// as MAX, energy-minimal gear choice instead of lowest-feasible.
enum class Algorithm { kMax, kAvg, kEnergyOptimalMax };

std::string to_string(Algorithm algorithm);

/// How an ideal (continuous) frequency maps onto a discrete gear set. The
/// paper always snaps *up* (never slower than the target allows); nearest
/// snapping is provided for the ablation study — it saves more energy but
/// can stretch the critical path.
enum class SnapPolicy { kUp, kNearest };

struct AlgorithmConfig {
  Algorithm algorithm = Algorithm::kMax;
  GearSet gear_set = paper_limited_continuous();
  /// Memory-boundedness parameter of the time model.
  double beta = 0.5;
  /// Manufacturer-specified top frequency; trace durations are measured at
  /// this frequency and "over-clocked" means above it.
  double nominal_fmax_ghz = kPaperFmaxGhz;
  SnapPolicy snap_policy = SnapPolicy::kUp;

  void validate() const;
};

/// Outcome of frequency assignment for one application run.
struct FrequencyAssignment {
  /// Chosen operating point per rank.
  std::vector<Gear> gears;
  /// Ideal (pre-snap) frequency per rank; may lie below the set's fmin or
  /// above its fmax (then the gear is clamped).
  std::vector<double> ideal_frequency_ghz;
  /// The computation time every rank was balanced towards.
  Seconds target_time = 0.0;
  /// Predicted per-rank computation time at the chosen gear.
  std::vector<Seconds> predicted_time;

  std::size_t overclocked_count(double nominal_fmax_ghz) const;
  double overclocked_fraction(double nominal_fmax_ghz) const;
};

/// The ideal frequency that stretches a computation of length `time` (at
/// `fref`) to exactly `target`:  solve  β(fref/f − 1) + 1 = target/time.
/// Returns +infinity when the required speed-up is unreachable even at
/// infinite frequency (target/time <= 1 − β), and 0 when β == 0 and the
/// rank has slack (any frequency works — callers snap up to fmin).
double ideal_frequency(Seconds time, Seconds target, double fref_ghz,
                       double beta);

/// Assign one frequency per rank given original computation times.
/// `computation_time[k]` must be >= 0; ranks with zero computation get the
/// set's minimum frequency.
FrequencyAssignment assign_frequencies(
    std::span<const Seconds> computation_time, const AlgorithmConfig& config);

/// Per-phase variant (used by the ablation study): a separate assignment
/// per computation phase. `computation_time[phase][rank]`.
std::vector<FrequencyAssignment> assign_frequencies_per_phase(
    const std::vector<std::vector<Seconds>>& computation_time,
    const AlgorithmConfig& config);

/// Energy-optimal discrete assignment (refinement of MAX): per rank, pick
/// the gear minimizing that rank's *energy* over the execution window,
/// subject to its stretched computation fitting the MAX target (the
/// original maximum computation time). MAX's snap-up rule picks the
/// lowest feasible frequency instead, which is only energy-optimal while
/// dynamic power dominates — with a large static fraction, idling longer
/// at a lower voltage can cost more than computing faster and waiting.
/// Ranks evaluate every feasible gear (discrete sets are small), so the
/// result is exactly optimal for the paper's power/time models.
FrequencyAssignment assign_frequencies_energy_optimal(
    std::span<const Seconds> computation_time, const AlgorithmConfig& config,
    const PowerModelConfig& power);

/// Per-rank slack: max(computation_time) − computation_time[k]. The time a
/// rank would wait for the most loaded rank in a fully synchronized
/// iteration.
std::vector<Seconds> slack_times(std::span<const Seconds> computation_time);

}  // namespace pals
