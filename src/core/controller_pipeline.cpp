#include "core/controller_pipeline.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "trace/transform.hpp"
#include "util/error.hpp"

namespace pals {

namespace {

/// gear_stuck faults pin a rank's DVFS actuator: whatever the controller
/// asked for, the effective gear is the extreme one. Applied to every
/// decision (including the seed), so the controller's observations and the
/// energy accounting both see the pinned gear.
void pin_stuck_gears(std::vector<Gear>& gears, const PipelineConfig& config) {
  if (config.replay.faults == nullptr ||
      !config.replay.faults->has_stuck_gears())
    return;
  for (std::size_t r = 0; r < gears.size(); ++r) {
    const std::optional<fault::StuckGear> stuck =
        config.replay.faults->stuck_gear(static_cast<Rank>(r));
    if (!stuck) continue;
    gears[r] = *stuck == fault::StuckGear::kMin
                   ? config.algorithm.gear_set.min_gear()
                   : config.algorithm.gear_set.max_gear();
  }
}

ControllerPipelineResult fall_back_static(const Trace& trace,
                                          const PipelineConfig& config,
                                          const ReplayResult& baseline) {
  obs::default_registry().counter("ctrl.fallback_static").add(1);
  PipelineConfig static_config = config;
  static_config.controller.kind = ControllerKind::kStatic;
  ControllerPipelineResult result;
  result.pipeline = run_pipeline(trace, static_config, baseline);
  result.controller.fell_back_static = true;
  return result;
}

}  // namespace

ControllerPipelineResult run_controller_pipeline(
    const Trace& trace, const PipelineConfig& config) {
  config.validate();
  return run_controller_pipeline(trace, config, replay(trace, config.replay));
}

ControllerPipelineResult run_controller_pipeline(
    const Trace& trace, const PipelineConfig& config,
    const ReplayResult& baseline) {
  config.validate();
  PALS_CHECK_MSG(!config.per_phase,
                 "per-phase assignment and online controllers are mutually "
                 "exclusive");
  if (trace.iteration_count() == 0)
    return fall_back_static(trace, config, baseline);

  obs::default_registry().counter("pipeline.runs").add(1);
  obs::Registry* reg = config.observe ? &obs::default_registry() : nullptr;
  const PowerModel power(config.power);
  const auto n = static_cast<std::size_t>(trace.n_ranks());

  ControllerPipelineResult result;
  PipelineResult& pipe = result.pipeline;
  ControllerRun& run = result.controller;

  pipe.baseline_replay = baseline;
  pipe.baseline_time = baseline.makespan;
  {
    PALS_SPAN("pipeline.energy", reg);
    pipe.baseline_energy = power.baseline_energy(baseline.timeline);
  }
  pipe.computation_time = baseline.compute_time;
  pipe.load_balance = load_balance(pipe.computation_time);
  pipe.parallel_efficiency =
      parallel_efficiency(pipe.computation_time, pipe.baseline_time);

  const std::vector<std::vector<Seconds>> base_times =
      iteration_computation_times(trace);
  const std::size_t iterations = base_times.size();

  std::vector<std::vector<Seconds>> stalls(
      iterations, std::vector<Seconds>(n, 0.0));
  {
    PALS_SPAN("pipeline.assignment", reg);
    const std::unique_ptr<Controller> controller =
        make_controller(config.controller, config.algorithm, config.power);

    ControllerSeed seed;
    seed.n_ranks = n;
    seed.iterations = iterations;
    seed.total_compute = pipe.computation_time;

    std::vector<Gear> gears = controller->start(seed);
    PALS_CHECK_MSG(gears.size() == n,
                   "controller returned " << gears.size()
                                          << " gears for " << n << " ranks");
    pin_stuck_gears(gears, config);
    run.schedule.reserve(iterations);
    run.schedule.push_back(gears);

    for (std::size_t i = 0; i + 1 < iterations; ++i) {
      IterationObservation obs;
      obs.iteration = i;
      obs.applied_gears = run.schedule[i];
      obs.observed_compute.resize(n);
      for (std::size_t r = 0; r < n; ++r)
        obs.observed_compute[r] =
            base_times[i][r] *
            power.time_scale(run.schedule[i][r].frequency_ghz);

      std::vector<Gear> next = controller->observe(obs);
      PALS_CHECK_MSG(next.size() == n,
                     "controller returned " << next.size()
                                            << " gears for " << n
                                            << " ranks");
      pin_stuck_gears(next, config);
      for (std::size_t r = 0; r < n; ++r) {
        if (next[r].frequency_ghz == run.schedule[i][r].frequency_ghz &&
            next[r].voltage_v == run.schedule[i][r].voltage_v)
          continue;
        ++run.switches;
        stalls[i + 1][r] = config.controller.transition_latency;
        run.transition_stall_seconds += config.controller.transition_latency;
      }
      run.schedule.push_back(std::move(next));
    }
    run.iterations = iterations;
    run.transition_energy =
        static_cast<double>(run.switches) * config.controller.transition_energy;
  }
  obs::default_registry().counter("ctrl.iterations").add(
      static_cast<std::uint64_t>(run.iterations));
  obs::default_registry().counter("ctrl.switches").add(
      static_cast<std::uint64_t>(run.switches));

  // Report the seed assignment (iteration 0) as "the" assignment; the
  // overclocked fraction counts ranks that ever exceeded nominal fmax.
  pipe.assignment.gears = run.schedule.front();
  std::size_t overclocked = 0;
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& row : run.schedule) {
      if (row[r].frequency_ghz >
          config.algorithm.nominal_fmax_ghz + 1e-12) {
        ++overclocked;
        break;
      }
    }
  }
  pipe.overclocked_fraction =
      static_cast<double>(overclocked) / static_cast<double>(n);

  Trace scaled;
  {
    PALS_SPAN("pipeline.rescale", reg);
    std::vector<std::vector<double>> factors(iterations,
                                             std::vector<double>(n, 1.0));
    for (std::size_t i = 0; i < iterations; ++i)
      for (std::size_t r = 0; r < n; ++r)
        factors[i][r] =
            power.time_scale(run.schedule[i][r].frequency_ghz);
    // Bursts outside any iteration (setup/teardown) run under the seed
    // gears — the runtime sets them before entering the loop.
    std::vector<double> default_factors(n);
    for (std::size_t r = 0; r < n; ++r)
      default_factors[r] =
          power.time_scale(run.schedule.front()[r].frequency_ghz);
    scaled = scale_compute_per_iteration(trace, factors, default_factors);
    // Scale first, then insert transition stalls: a regulator stall is
    // wall-clock time independent of the chosen frequency.
    if (run.transition_stall_seconds > 0.0)
      scaled = add_iteration_overhead(scaled, stalls);
  }

  {
    PALS_SPAN("pipeline.scaled_replay", reg);
    pipe.scaled_replay = replay(scaled, config.replay);
  }
  pipe.scaled_time = pipe.scaled_replay.makespan;
  {
    PALS_SPAN("pipeline.energy", reg);
    pipe.scaled_energy =
        power.scheduled_energy(pipe.scaled_replay.timeline, run.schedule,
                               run.schedule.front()) +
        run.transition_energy;
  }
  return result;
}

}  // namespace pals
