// The built-in online DVFS controllers (power/controller.hpp) and their
// configuration.
//
// Five policies, from degenerate to fully dynamic:
//  * static       — adapter wrapping the one-shot assigner (MAX / AVG /
//                   kEnergyOptimalMax per AlgorithmConfig::algorithm): it
//                   solves once on the whole-run profile and never moves.
//                   Exists so the controller machinery can reproduce the
//                   paper's algorithms gear-for-gear (property-tested).
//  * dynamic_max  — re-solves MAX every iteration on the previous
//                   iteration's load vector (reconstructed from the
//                   observed, DVFS-stretched times via the β time model).
//  * dynamic_avg  — the same re-solve with AVG.
//  * slack        — proportional slack tracker with hysteresis and an
//                   explicit gear-switch cost model: a rank re-targets the
//                   observed critical path when its relative slack leaves
//                   the [threshold·hysteresis, threshold] dead band, and a
//                   down-shift only happens when the predicted per-
//                   iteration energy saving exceeds the transition cost.
//  * ewma         — exponentially-weighted moving average of the load
//                   vector feeding the re-solver (scenario algorithm):
//                   smooths noisy iterations instead of chasing them.
//
// When to use which: compute drift_index (analysis/iteration_stats.hpp).
// ~0 means static is already optimal (and dynamic_max must match it —
// property-tested); large values mean the imbalance pattern moves and
// only the dynamic policies track it. See docs/controllers.md.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "power/controller.hpp"
#include "power/power_model.hpp"

namespace pals {

enum class ControllerKind {
  kStatic,
  kDynamicMax,
  kDynamicAvg,
  kSlack,
  kEwma,
};

std::string to_string(ControllerKind kind);

/// Parse a controller name ("static", "dynamic_max", "dynamic_avg",
/// "slack", "ewma"); throws pals::Error listing the options.
ControllerKind controller_by_name(const std::string& name);

/// All controller names, in canonical order (for CLIs and docs).
std::vector<std::string> controller_names();

/// Controller selection + knobs, carried by PipelineConfig and the sweep
/// grid. Everything here is result-affecting and therefore part of the
/// sweep config hash (resumed sweeps refuse a changed controller setup).
struct ControllerOptions {
  ControllerKind kind = ControllerKind::kStatic;

  // --- DVFS transition cost model --------------------------------------
  /// Wall-clock stall a rank pays at the start of an iteration in which
  /// its gear changed (voltage regulators need O(10–100 µs) per switch;
  /// 0 = free switching, the paper's implicit assumption).
  Seconds transition_latency = 0.0;
  /// Energy charged per gear switch (energy-units; the same normalized
  /// unit the power model integrates in).
  double transition_energy = 0.0;

  // --- slack controller -------------------------------------------------
  /// Minimum relative slack ((Tmax − T)/Tmax) before a rank re-targets
  /// the critical path downwards; also the safety margin kept below the
  /// critical path by the re-target (down-shifts aim at
  /// (1 − threshold)·Tmax, not Tmax, so drifting loads have headroom).
  double slack_threshold = 0.15;
  /// Dead-band factor: a rank jumps back to nominal speed only when its
  /// slack falls below slack_threshold · hysteresis. Must lie in [0, 1).
  /// The jump fires while the rank still has that much slack, so a
  /// per-iteration load rise below threshold·hysteresis·Tmax never
  /// stretches the critical path.
  double hysteresis = 0.8;

  // --- ewma controller --------------------------------------------------
  /// Smoothing weight of the newest observation. 1.0 degenerates to the
  /// plain re-solver; small values react slowly.
  double ewma_alpha = 0.5;

  void validate() const;
};

/// Build a controller. `algorithm` supplies the gear set, β, snapping and
/// (for static/ewma) which one-shot algorithm to solve; `power` supplies
/// the time/power models used to reconstruct loads and price switches.
std::unique_ptr<Controller> make_controller(const ControllerOptions& options,
                                            const AlgorithmConfig& algorithm,
                                            const PowerModelConfig& power);

}  // namespace pals
