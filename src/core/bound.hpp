// Energy-saving bound for an allowable time delay — the question Rountree
// et al. (SC'07, the paper's reference [21]) answer with a linear program,
// specialized here to the paper's power/time models.
//
// Given per-rank computation times, the baseline execution time, and an
// allowable slowdown δ, the bound assumes perfect (continuous) per-rank
// frequency choice and a fully synchronized execution: every rank's
// computation may stretch until the total time reaches (1+δ)·T0. Each
// rank's energy over the fixed interval is then minimized independently
// over its admissible frequency range — a 1-D problem solved numerically.
//
// The result is a *lower* bound on normalized CPU energy that MAX (δ=0,
// snapped gears) and AVG can be compared against.
#pragma once

#include <span>
#include <vector>

#include "power/power_model.hpp"
#include "trace/types.hpp"

namespace pals {

struct EnergyBoundConfig {
  PowerModelConfig power;
  /// Admissible continuous frequency range.
  double fmin_ghz = kUnlimitedFloorGhz;
  double fmax_ghz = kPaperFmaxGhz;

  void validate() const;
};

struct EnergyBound {
  /// Minimal CPU energy normalized to the all-at-fmax baseline.
  double normalized_energy = 0.0;
  /// Optimal per-rank frequency.
  std::vector<double> frequency_ghz;
  /// Predicted execution time under the bound (<= (1+δ)·T0).
  Seconds predicted_time = 0.0;
};

/// Compute the bound. `computation_time` are baseline per-rank times,
/// `total_time` the baseline execution time (>= max computation time),
/// `allowed_slowdown` is δ >= 0.
EnergyBound energy_saving_bound(std::span<const Seconds> computation_time,
                                Seconds total_time, double allowed_slowdown,
                                const EnergyBoundConfig& config);

}  // namespace pals
