// End-to-end power-analysis pipeline (paper §4).
//
// Mirrors the paper's simulation methodology:
//   1. replay the original trace to obtain the baseline execution time and
//      per-rank computation times,
//   2. assign one frequency per rank (MAX or AVG over a gear set),
//   3. rescale every compute burst with the β time model,
//   4. replay the modified trace for the new execution time,
//   5. integrate CPU energy over both timelines and report normalized
//      energy, time and EDP.
#pragma once

#include <vector>

#include "core/algorithms.hpp"
#include "core/controllers.hpp"
#include "power/power_model.hpp"
#include "replay/replay.hpp"
#include "trace/trace.hpp"

namespace pals {

struct PipelineConfig {
  AlgorithmConfig algorithm;
  PowerModelConfig power;
  ReplayConfig replay;
  /// Online DVFS controller (core/controllers.hpp). kStatic keeps the
  /// classic one-shot path below byte-identical; any dynamic kind routes
  /// run_pipeline through the controller pipeline
  /// (core/controller_pipeline.hpp), which re-assigns gears at iteration
  /// boundaries and charges the configured transition costs.
  ControllerOptions controller;
  /// Ablation: compute a separate frequency per computation phase instead
  /// of one per rank (the paper uses a single setting; PEPC's 20 % slowdown
  /// stems from that restriction).
  bool per_phase = false;
  /// Opt-in fail-fast verification: statically lint the input trace
  /// (lint/lint.hpp, with this config's eager threshold) before the
  /// baseline replay and throw the full diagnostic report on any error —
  /// a malformed or deadlocking trace aborts up front instead of
  /// mid-replay.
  bool lint = false;
  /// Record per-phase wall-clock spans (pipeline.baseline_replay,
  /// .assignment, .rescale, .scaled_replay, .energy) into
  /// obs::default_registry() — the host-profiling view consumed by
  /// pals_profile and the Chrome-trace export. Simulation metrics are
  /// always recorded; this flag only controls the wall-clock spans.
  bool observe = false;

  void validate() const;
};

struct PipelineResult {
  /// Baseline (all ranks at the reference frequency).
  Seconds baseline_time = 0.0;
  double baseline_energy = 0.0;
  double load_balance = 0.0;        ///< Σ comp / (N · max comp), eq. (4)
  double parallel_efficiency = 0.0; ///< Σ comp / (N · total time), eq. (5)

  /// DVFS execution.
  Seconds scaled_time = 0.0;
  double scaled_energy = 0.0;
  FrequencyAssignment assignment;   ///< whole-run assignment (per_phase=false)
  std::vector<FrequencyAssignment> phase_assignments;  ///< per_phase=true
  double overclocked_fraction = 0.0;

  /// Per-rank computation times of the baseline run (input to the
  /// algorithms; useful for reporting).
  std::vector<Seconds> computation_time;

  double normalized_energy() const { return scaled_energy / baseline_energy; }
  double normalized_time() const { return scaled_time / baseline_time; }
  double normalized_edp() const {
    return normalized_energy() * normalized_time();
  }

  /// Full replay outputs, kept for visualization (Figure 1) and deeper
  /// analysis.
  ReplayResult baseline_replay;
  ReplayResult scaled_replay;
};

PipelineResult run_pipeline(const Trace& trace, const PipelineConfig& config);

/// Same pipeline, but reuse a precomputed baseline replay instead of
/// re-simulating it. `baseline` must be the result of
/// replay(trace, config.replay); the sweep engine (analysis/sweep.hpp)
/// uses this to run the baseline once per workload instead of once per
/// gear point.
PipelineResult run_pipeline(const Trace& trace, const PipelineConfig& config,
                            const ReplayResult& baseline);

/// Equations (4) and (5) of the paper.
double load_balance(std::span<const Seconds> computation_time);
double parallel_efficiency(std::span<const Seconds> computation_time,
                           Seconds total_time);

}  // namespace pals
